package core

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

func TestGOJReassociateShape(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 5).Dedup(),
		"Y": workload.RandomRelation(rnd, "Y", 5).Dedup(),
		"Z": workload.RandomRelation(rnd, "Z", 5).Dedup(),
	}
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("X", "Y"))
	got, ok, err := GOJReassociate(q, SchemesOf(db))
	if err != nil || !ok {
		t.Fatalf("rewrite failed: %v %v", ok, err)
	}
	if got.Op != expr.GOJ || got.Left.Op != expr.LeftOuter {
		t.Fatalf("shape = %v", got)
	}
	if len(got.GOJAttrs) != db["X"].Scheme().Len() {
		t.Errorf("S = %v, want sch(X)", got.GOJAttrs)
	}
}

// TestGOJReassociatePreservesResults: identity 15 as a tree rewrite, on
// duplicate-free databases with strong predicates.
func TestGOJReassociatePreservesResults(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	rewrites := 0
	for trial := 0; trial < 300; trial++ {
		db := expr.DB{
			"X": workload.RandomRelation(rnd, "X", 6).Dedup(),
			"Y": workload.RandomRelation(rnd, "Y", 6).Dedup(),
			"Z": workload.RandomRelation(rnd, "Z", 6).Dedup(),
		}
		q := expr.NewOuter(expr.NewLeaf("X"),
			expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), workload.RandomPredicate(rnd, "Y", "Z")),
			workload.RandomPredicate(rnd, "X", "Y"))
		rw, ok, err := GOJReassociate(q, SchemesOf(db))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("rewrite must apply to the X -> (Y - Z) shape")
		}
		rewrites++
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rw.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: GOJ rewrite changed the result\nq: %s\nrw: %s",
				trial, q.StringWithPreds(), rw.StringWithPreds())
		}
	}
	if rewrites == 0 {
		t.Error("no rewrites exercised")
	}
}

// TestGOJPushJoinPreservesResults: identity 16 as a tree rewrite — and
// composed with identity 15, it reorders W JN (X -> (Y - Z)) entirely.
func TestGOJPushJoinPreservesResults(t *testing.T) {
	rnd := rand.New(rand.NewSource(45))
	rewrites := 0
	for trial := 0; trial < 200; trial++ {
		db := expr.DB{
			"W": workload.RandomRelation(rnd, "W", 6).Dedup(),
			"X": workload.RandomRelation(rnd, "X", 6).Dedup(),
			"Y": workload.RandomRelation(rnd, "Y", 6).Dedup(),
			"Z": workload.RandomRelation(rnd, "Z", 6).Dedup(),
		}
		schemes := SchemesOf(db)
		// Build X -> (Y - Z), rewrite via identity 15 to a GOJ, then join
		// W on top and push it through via identity 16.
		inner := expr.NewOuter(expr.NewLeaf("X"),
			expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), workload.RandomPredicate(rnd, "Y", "Z")),
			workload.RandomPredicate(rnd, "X", "Y"))
		goj, ok, err := GOJReassociate(inner, schemes)
		if err != nil || !ok {
			t.Fatalf("identity 15 failed: %v %v", ok, err)
		}
		pwx := workload.RandomPredicate(rnd, "W", "X")
		q := expr.NewJoin(expr.NewLeaf("W"), goj, pwx)
		// goj = (X -> Y) GOJ[sch(X)] Z; S = sch(X) covers the W-X join
		// attributes, so identity 16 applies.
		pushed, ok, err := GOJPushJoin(q, schemes)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("identity 16 should apply to %s", q.StringWithPreds())
		}
		rewrites++
		want, err := expr.NewJoin(expr.NewLeaf("W"), inner, pwx).Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pushed.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: identity-16 rewrite changed the result\nq: %s\npushed: %s",
				trial, q.StringWithPreds(), pushed.StringWithPreds())
		}
		if pushed.Op != expr.GOJ || pushed.Left.Op != expr.Join {
			t.Fatalf("shape = %s", pushed)
		}
	}
	if rewrites == 0 {
		t.Error("no rewrites exercised")
	}
}

func TestGOJPushJoinRejections(t *testing.T) {
	rnd := rand.New(rand.NewSource(46))
	db := expr.DB{
		"W": workload.RandomRelation(rnd, "W", 4),
		"X": workload.RandomRelation(rnd, "X", 4),
		"Y": workload.RandomRelation(rnd, "Y", 4),
		"Z": workload.RandomRelation(rnd, "Z", 4),
	}
	schemes := SchemesOf(db)
	leafGOJ := expr.NewGOJ(expr.NewLeaf("Y"), expr.NewLeaf("Z"),
		eqp("Y", "Z"), db["Y"].Scheme().Attrs())

	// Wrong root op.
	if _, ok, _ := GOJPushJoin(expr.NewOuter(expr.NewLeaf("X"), leafGOJ, eqp("X", "Y")), schemes); ok {
		t.Error("outer root must not rewrite")
	}
	// Right child not a GOJ.
	if _, ok, _ := GOJPushJoin(expr.NewJoin(expr.NewLeaf("X"), expr.NewLeaf("Y"), eqp("X", "Y")), schemes); ok {
		t.Error("leaf right child must not rewrite")
	}
	// Join predicate reaching Z (wrong scope).
	if _, ok, _ := GOJPushJoin(expr.NewJoin(expr.NewLeaf("X"), leafGOJ, eqp("X", "Z")), schemes); ok {
		t.Error("P_xz scope must not rewrite")
	}
	// S not covering the join attribute: S = {Y.b} but join on Y.a.
	partial := expr.NewGOJ(expr.NewLeaf("Y"), expr.NewLeaf("Z"),
		eqp("Y", "Z"), []relation.Attr{relation.A("Y", "b")})
	if _, ok, _ := GOJPushJoin(expr.NewJoin(expr.NewLeaf("X"), partial, eqp("X", "Y")), schemes); ok {
		t.Error("S missing the join attribute must not rewrite")
	}
	// S outside sch(Y): S = sch(Z).
	foreign := expr.NewGOJ(expr.NewLeaf("Y"), expr.NewLeaf("Z"),
		eqp("Y", "Z"), db["Z"].Scheme().Attrs())
	if _, ok, _ := GOJPushJoin(expr.NewJoin(expr.NewLeaf("X"), foreign, eqp("X", "Y")), schemes); ok {
		t.Error("S outside sch(Y) must not rewrite")
	}
	// Unknown scheme.
	bad := expr.NewJoin(expr.NewLeaf("NOPE"), leafGOJ,
		predicate.Eq(relation.A("NOPE", "a"), relation.A("Y", "a")))
	if _, _, err := GOJPushJoin(bad, schemes); err == nil {
		t.Error("missing scheme must error")
	}
}

func TestGOJReassociateRejections(t *testing.T) {
	rnd := rand.New(rand.NewSource(43))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 4),
		"Y": workload.RandomRelation(rnd, "Y", 4),
		"Z": workload.RandomRelation(rnd, "Z", 4),
	}
	schemes := SchemesOf(db)

	// Wrong root operator.
	q1 := expr.NewJoin(expr.NewLeaf("X"), expr.NewLeaf("Y"), eqp("X", "Y"))
	if _, ok, _ := GOJReassociate(q1, schemes); ok {
		t.Error("join root must not rewrite")
	}
	// Right child is not a join.
	q2 := expr.NewOuter(expr.NewLeaf("X"), expr.NewLeaf("Y"), eqp("X", "Y"))
	if _, ok, _ := GOJReassociate(q2, schemes); ok {
		t.Error("leaf right child must not rewrite")
	}
	// P_xy references Z (wrong scope): X -> (Y - Z) with outer pred X.a = Z.a.
	q3 := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("X", "Z"))
	if _, ok, _ := GOJReassociate(q3, schemes); ok {
		t.Error("P_xz scope must not rewrite (identity 15 needs P_xy)")
	}
	// Unknown relation scheme.
	q4 := expr.NewOuter(expr.NewLeaf("W"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("W", "Y"))
	if _, _, err := GOJReassociate(q4, schemes); err == nil {
		t.Error("missing scheme must error")
	}
}
