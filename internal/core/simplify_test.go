package core

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

// strongRestrict returns σ[rel.a = 1].
func strongRestrict(child *expr.Node, rel string) *expr.Node {
	return expr.NewRestrict(child, predicate.EqConst(relation.A(rel, "a"), relation.Int(1)))
}

func TestSimplifyRestrictionOverOuterjoin(t *testing.T) {
	// σ[S.a = 1](R -> S): S is null-supplied but the restriction is strong
	// on S.a, so the outerjoin becomes a join.
	q := strongRestrict(expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")), "S")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 1 {
		t.Fatalf("conversions = %d", n)
	}
	if got.Left.Op != expr.Join {
		t.Fatalf("outerjoin not converted: %v", got)
	}
}

func TestSimplifyRestrictionOnPreservedSideNoChange(t *testing.T) {
	// σ[R.a = 1](R -> S): R is preserved; no conversion.
	q := strongRestrict(expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")), "R")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 0 || got != q {
		t.Fatalf("unexpected conversion: %d, %v", n, got)
	}
}

func TestSimplifyNonStrongRestrictionNoChange(t *testing.T) {
	// σ[S.a is null](R -> S): is-null is not strong; padding survives.
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		predicate.NewIsNull(relation.A("S", "a")))
	if _, n := Simplify(q, SimplifyOptions{}); n != 0 {
		t.Fatal("non-strong restriction must not convert")
	}
}

func TestSimplifyJoinPredicateTriggers(t *testing.T) {
	// (R -> S) - T on S.a = T.a: the regular join's predicate is strong on
	// S, and S is null-supplied below — converts to (R - S) - T.
	q := expr.NewJoin(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		expr.NewLeaf("T"), eqp("S", "T"))
	got, n := Simplify(q, SimplifyOptions{})
	if n != 1 || got.Left.Op != expr.Join {
		t.Fatalf("join-predicate conversion failed: %d, %v", n, got)
	}
}

func TestSimplifyCascades(t *testing.T) {
	// σ[T.a = 1](R -> (S -> T)): the restriction kills padding of T, so
	// the inner outerjoin converts; its join predicate (S.a = T.a) is
	// strong on S... but S sits on the *preserved* side of the outer
	// outerjoin relative to nothing — the outer outerjoin pads S∪T for
	// unmatched R? No: R is preserved, (S->T) null-supplied, and the
	// restriction on T is strong, so the OUTER outerjoin also converts.
	q := strongRestrict(
		expr.NewOuter(expr.NewLeaf("R"),
			expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"), eqp("S", "T")),
			eqp("R", "S")),
		"T")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 2 {
		t.Fatalf("conversions = %d, tree = %v", n, got)
	}
	if got.Left.Op != expr.Join || got.Left.Right.Op != expr.Join {
		t.Fatalf("both outerjoins should convert: %v", got)
	}
}

func TestSimplifyRightOuter(t *testing.T) {
	// σ[S.a = 1](S <- R): S null-supplied on the left of a RightOuter.
	q := strongRestrict(expr.NewRightOuter(expr.NewLeaf("S"), expr.NewLeaf("R"), eqp("R", "S")), "S")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 1 || got.Left.Op != expr.Join {
		t.Fatalf("RightOuter conversion failed: %d, %v", n, got)
	}
}

func TestSimplifyOuterPredicateExtension(t *testing.T) {
	// R -> (S -> T) where the outer predicate references T strongly
	// (R.a = T.a): with the extension the inner outerjoin converts; by
	// default (paper rule) it does not.
	q := expr.NewOuter(expr.NewLeaf("R"),
		expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"), eqp("S", "T")),
		predicate.Eq(relation.A("R", "a"), relation.A("T", "a")))
	if _, n := Simplify(q, SimplifyOptions{}); n != 0 {
		t.Fatal("paper rule must not use outerjoin predicates")
	}
	got, n := Simplify(q, SimplifyOptions{UseOuterPredicates: true})
	if n != 1 || got.Right.Op != expr.Join {
		t.Fatalf("extension conversion failed: %d, %v", n, got)
	}
}

func TestSimplifyLeavesOtherOpsAlone(t *testing.T) {
	q := strongRestrict(
		expr.NewProject(
			expr.NewAnti(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
			[]relation.Attr{relation.A("R", "a")}, false),
		"R")
	if _, n := Simplify(q, SimplifyOptions{}); n != 0 {
		t.Fatal("antijoin/project must pass through unchanged")
	}
}

// TestSimplifyPreservesResults: the rewrite never changes query results,
// under both the paper rule and the extension, on randomized queries.
func TestSimplifyPreservesResults(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	converted := 0
	for trial := 0; trial < 400; trial++ {
		// Build a random 3-relation query with outerjoins and a strong
		// restriction on one relation.
		x := expr.NewLeaf("X")
		y := expr.NewLeaf("Y")
		z := expr.NewLeaf("Z")
		var q *expr.Node
		pxy, pyz := workload.RandomPredicate(rnd, "X", "Y"), workload.RandomPredicate(rnd, "Y", "Z")
		switch rnd.Intn(4) {
		case 0:
			q = expr.NewOuter(expr.NewOuter(x, y, pxy), z, pyz)
		case 1:
			q = expr.NewOuter(x, expr.NewOuter(y, z, pyz), pxy)
		case 2:
			q = expr.NewOuter(expr.NewJoin(x, y, pxy), z, pyz)
		default:
			q = expr.NewOuter(x, expr.NewJoin(y, z, pyz), pxy)
		}
		rel := []string{"X", "Y", "Z"}[rnd.Intn(3)]
		q = expr.NewRestrict(q, predicate.EqConst(relation.A(rel, "a"), relation.Int(int64(rnd.Intn(3)))))

		db := expr.DB{
			"X": workload.RandomRelation(rnd, "X", 5),
			"Y": workload.RandomRelation(rnd, "Y", 5),
			"Z": workload.RandomRelation(rnd, "Z", 5),
		}
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []SimplifyOptions{{}, {UseOuterPredicates: true}} {
			simplified, n := Simplify(q, opts)
			converted += n
			got, err := simplified.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualBag(want) {
				t.Fatalf("trial %d: simplification changed the result\nq: %s\nsimplified: %s",
					trial, q.StringWithPreds(), simplified.StringWithPreds())
			}
		}
	}
	if converted == 0 {
		t.Error("no conversions exercised")
	}
}

// TestSimplifyPreservesFreeReorderability validates §4's conjecture: "if
// the restriction predicate occurs after all outerjoins, then the
// simplification cannot introduce new violations of free reorderability."
// For random freely-reorderable blocks under a strong restriction, the
// simplified block is still freely reorderable.
func TestSimplifyPreservesFreeReorderability(t *testing.T) {
	rnd := rand.New(rand.NewSource(32))
	converted, checked := 0, 0
	for trial := 0; trial < 300; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		block := its[rnd.Intn(len(its))]
		if ok, reason := FreelyReorderable(block); !ok {
			t.Fatalf("generator invariant: %s", reason)
		}
		// Restrict strongly on a random relation, above the block.
		rels := block.Relations()
		rel := rels[rnd.Intn(len(rels))]
		q := expr.NewRestrict(block, predicate.EqConst(relation.A(rel, "a"), relation.Int(1)))
		simplified, n := Simplify(q, SimplifyOptions{})
		converted += n
		// The simplified query is σ(block'): block' must remain freely
		// reorderable.
		inner := simplified.Left
		if ok, reason := FreelyReorderable(inner); !ok {
			t.Fatalf("trial %d: simplification broke reorderability (%s)\nbefore: %s\nafter:  %s",
				trial, reason, block.StringWithPreds(), inner.StringWithPreds())
		}
		checked++
	}
	if converted == 0 || checked == 0 {
		t.Errorf("conjecture not exercised: %d conversions over %d checks", converted, checked)
	}
}

// TestReferentialIntegrityCounterexample reproduces §4's warning: in
// R1 → R2 → R3, substituting the (semantically equal, under referential
// integrity) join for the inner outerjoin leaves a query that is NOT
// freely reorderable.
func TestReferentialIntegrityCounterexample(t *testing.T) {
	orig := expr.NewOuter(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), eqp("R2", "R3")),
		eqp("R1", "R2"))
	if ok, _ := FreelyReorderable(orig); !ok {
		t.Fatal("the outerjoin chain is freely reorderable")
	}
	replaced := expr.NewOuter(expr.NewLeaf("R1"),
		expr.NewJoin(expr.NewLeaf("R2"), expr.NewLeaf("R3"), eqp("R2", "R3")),
		eqp("R1", "R2"))
	if ok, reason := FreelyReorderable(replaced); ok {
		t.Fatalf("after the RI rewrite the query must NOT be freely reorderable (%s)", reason)
	}
}
