package core

import (
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// The §4 simplification: "Suppose the query includes a predicate
// (restriction or regular join) that is strong in some attributes of
// relation R. Consider the path in the implementing tree going from that
// predicate to R. If an outerjoin is in that path and R is in its
// null-supplied subtree, then replace the operator by regular join."
//
// The rule is applied before query-graph creation, turning queries like
// σ[T.x = 5](R → (S → T)) into σ[T.x = 5](R → (S — T)) — the padding the
// inner outerjoin would introduce can never survive the strong
// restriction, so the outerjoin degenerates to a join.

// SimplifyOptions controls the simplification pass.
type SimplifyOptions struct {
	// UseOuterPredicates additionally lets an outerjoin's own predicate
	// convert outerjoins *inside its null-supplied subtree*: tuples of
	// that subtree only reach the result through the predicate, so
	// null-padded tuples it rejects can never matter. The paper's rule
	// uses only restrictions and regular joins; this extension is sound
	// (covered by TestSimplifyPreservesResults) but off by default for
	// paper fidelity.
	UseOuterPredicates bool
}

// Simplify applies the §4 outerjoin-to-join rule bottom-up until a fixed
// point, returning the rewritten tree and the number of outerjoins
// converted. The input tree is not modified.
func Simplify(q *expr.Node, opts SimplifyOptions) (*expr.Node, int) {
	total := 0
	for {
		next, n := simplifyOnce(q, map[string]bool{}, opts)
		total += n
		if n == 0 {
			return q, total
		}
		q = next
	}
}

// simplifyOnce walks the tree carrying the set of relations that some
// ancestor predicate strongly filters ("required": any tuple null on that
// relation's referenced attributes is discarded above).
func simplifyOnce(n *expr.Node, required map[string]bool, opts SimplifyOptions) (*expr.Node, int) {
	switch n.Op {
	case expr.Leaf:
		return n, 0
	case expr.Restrict:
		child := addStrongRels(required, n.Pred)
		newChild, k := simplifyOnce(n.Left, child, opts)
		if k == 0 {
			return n, 0
		}
		return expr.NewRestrict(newChild, n.Pred), k
	case expr.Project:
		newChild, k := simplifyOnce(n.Left, required, opts)
		if k == 0 {
			return n, 0
		}
		return expr.NewProject(newChild, n.ProjAttrs, n.ProjDedup), k
	case expr.Join:
		sub := addStrongRels(required, n.Pred)
		l, kl := simplifyOnce(n.Left, sub, opts)
		r, kr := simplifyOnce(n.Right, sub, opts)
		if kl+kr == 0 {
			return n, 0
		}
		return expr.NewJoin(l, r, n.Pred), kl + kr
	case expr.FullOuter:
		// §4's remark: "A similar argument can be used to convert 2-sided
		// outerjoin to one-sided outerjoin." A strong ancestor predicate
		// on a relation of one side discards the rows that pad that side,
		// so the operator drops to the outerjoin preserving that side —
		// or to a regular join when both sides are strongly filtered.
		leftReq, rightReq := false, false
		for _, rel := range n.Left.Relations() {
			if required[rel] {
				leftReq = true
				break
			}
		}
		for _, rel := range n.Right.Relations() {
			if required[rel] {
				rightReq = true
				break
			}
		}
		switch {
		case leftReq && rightReq:
			return expr.NewJoin(n.Left, n.Right, n.Pred), 1
		case leftReq:
			// Rows padding the left side (unmatched right tuples) die, so
			// only left-preserved padding remains.
			return expr.NewOuter(n.Left, n.Right, n.Pred), 1
		case rightReq:
			return expr.NewRightOuter(n.Left, n.Right, n.Pred), 1
		}
		// Neither side strongly filtered: recurse. Requirements may pass
		// into both children — a child tuple null on a required relation
		// only ever yields output rows that stay null there (matched or
		// padded), all of which the ancestor discards.
		l, kl := simplifyOnce(n.Left, required, opts)
		r, kr := simplifyOnce(n.Right, required, opts)
		if kl+kr == 0 {
			return n, 0
		}
		return expr.NewFullOuter(l, r, n.Pred), kl + kr
	case expr.LeftOuter, expr.RightOuter:
		preserved, nullSide := n.Left, n.Right
		if n.Op == expr.RightOuter {
			preserved, nullSide = n.Right, n.Left
		}
		// Conversion condition: an ancestor strongly filters a relation of
		// the null-supplied subtree.
		for _, rel := range nullSide.Relations() {
			if required[rel] {
				// Replace by a regular join with the same operands and
				// predicate; count 1 and let the next fixed-point round
				// propagate the join predicate's strongness downward.
				return expr.NewJoin(n.Left, n.Right, n.Pred), 1
			}
		}
		// Recurse. The preserved side keeps the ancestor requirements
		// (padding never affects it); the null-supplied side drops them —
		// its tuples are shielded by the padding semantics — unless the
		// extension lets this operator's own predicate filter it.
		nullReq := map[string]bool{}
		if opts.UseOuterPredicates {
			nullReq = addStrongRels(nullReq, n.Pred)
		}
		var l, r *expr.Node
		var kl, kr int
		if n.Op == expr.LeftOuter {
			l, kl = simplifyOnce(preserved, required, opts)
			r, kr = simplifyOnce(nullSide, nullReq, opts)
		} else {
			r, kr = simplifyOnce(preserved, required, opts)
			l, kl = simplifyOnce(nullSide, nullReq, opts)
		}
		if kl+kr == 0 {
			return n, 0
		}
		return &expr.Node{Op: n.Op, Left: l, Right: r, Pred: n.Pred}, kl + kr
	default:
		// Antijoin, semijoin, GOJ: leave untouched (outside the §4 rule).
		return n, 0
	}
}

// addStrongRels returns a copy of required extended with every relation R
// such that p is strong with respect to the attributes p references from
// R.
func addStrongRels(required map[string]bool, p predicate.Predicate) map[string]bool {
	out := make(map[string]bool, len(required)+2)
	for k, v := range required {
		out[k] = v
	}
	byRel := map[string]relation.AttrSet{}
	for a := range p.Attrs() {
		if byRel[a.Rel] == nil {
			byRel[a.Rel] = relation.NewAttrSet()
		}
		byRel[a.Rel].Add(a)
	}
	for rel, attrs := range byRel {
		if predicate.StrongWRT(p, attrs) {
			out[rel] = true
		}
	}
	return out
}
