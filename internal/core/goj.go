package core

import (
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// §6.2: reassociating queries the basic transforms cannot touch. The
// expression X → (Y — Z) (Example 2's shape) has no result-preserving
// reordering within {join, outerjoin}, but identity 15 rewrites it with a
// generalized outerjoin:
//
//	X OJ (Y JN Z)  =  (X OJ Y) GOJ[sch(X)] Z
//
// letting an optimizer evaluate X→Y first. The identities assume
// duplicate-free relations and strong predicates of shapes P_xy and P_yz.

// SchemeSource resolves the scheme of a ground relation; the GOJ rewrite
// needs sch(X) to build the S attribute set.
type SchemeSource interface {
	Scheme(rel string) (*relation.Scheme, error)
}

// SchemesOf adapts an expr.Source database into a SchemeSource.
func SchemesOf(src expr.Source) SchemeSource { return schemeAdapter{src} }

type schemeAdapter struct{ src expr.Source }

// Scheme implements SchemeSource by materializing the relation.
func (s schemeAdapter) Scheme(rel string) (*relation.Scheme, error) {
	r, err := s.src.Relation(rel)
	if err != nil {
		return nil, err
	}
	return r.Scheme(), nil
}

// GOJReassociate applies identity 15 at the root when it matches: given
// X → (Y — Z) with P_xy between X and the Y side and P_yz between the Y
// and Z sides, it returns (X → Y) GOJ[sch(X)] Z. ok is false when the
// shape or the predicate scopes do not match.
func GOJReassociate(q *expr.Node, schemes SchemeSource) (*expr.Node, bool, error) {
	if q.Op != expr.LeftOuter || q.Right == nil || q.Right.Op != expr.Join {
		return nil, false, nil
	}
	x, y, z := q.Left, q.Right.Left, q.Right.Right
	pxy, pyz := q.Pred, q.Right.Pred
	// P_xy must reference X and Y only (not Z); P_yz must reference Y and
	// Z only (not X) — the identity's P_xy/P_yz shape requirement.
	if !predScopedTo(pxy, x, y) || !predScopedTo(pyz, y, z) {
		return nil, false, nil
	}
	var s []relation.Attr
	for _, rel := range x.Relations() {
		sch, err := schemes.Scheme(rel)
		if err != nil {
			return nil, false, err
		}
		s = append(s, sch.Attrs()...)
	}
	inner := expr.NewOuter(x, y, pxy)
	return expr.NewGOJ(inner, z, pyz, s), true, nil
}

// GOJPushJoin applies identity 16 at the root:
//
//	X JN (Y GOJ[S] Z)  =  (X JN Y) GOJ[S ∪ sch(X)] Z
//
// legal when S ⊆ sch(Y) and S contains all the X–Y join attributes (and,
// as everywhere in §6.2, inputs are duplicate-free with strong P_xy/P_yz
// predicates). Applied repeatedly it floats a generalized outerjoin to
// the top of a join chain, freeing the joins beneath it for reordering.
func GOJPushJoin(q *expr.Node, schemes SchemeSource) (*expr.Node, bool, error) {
	if q.Op != expr.Join || q.Right == nil || q.Right.Op != expr.GOJ {
		return nil, false, nil
	}
	x, y, z := q.Left, q.Right.Left, q.Right.Right
	pxy, pyz := q.Pred, q.Right.Pred
	if !predScopedTo(pxy, x, y) || !predScopedTo(pyz, y, z) {
		return nil, false, nil
	}
	// S ⊆ sch(Y): every projection attribute belongs to a Y-side relation.
	yRels := map[string]bool{}
	for _, r := range y.Relations() {
		yRels[r] = true
	}
	s := q.Right.GOJAttrs
	sSet := relation.NewAttrSet(s...)
	for _, a := range s {
		if !yRels[a.Rel] {
			return nil, false, nil
		}
	}
	// S must contain the X–Y join attributes drawn from Y.
	for a := range pxy.Attrs() {
		if yRels[a.Rel] && !sSet.Contains(a) {
			return nil, false, nil
		}
	}
	// S ∪ sch(X).
	newS := append([]relation.Attr(nil), s...)
	for _, rel := range x.Relations() {
		sch, err := schemes.Scheme(rel)
		if err != nil {
			return nil, false, err
		}
		newS = append(newS, sch.Attrs()...)
	}
	inner := expr.NewJoin(x, y, pxy)
	return expr.NewGOJ(inner, z, pyz, newS), true, nil
}

// predScopedTo reports whether every relation p references lies in a or
// b, touching both sides.
func predScopedTo(p predicate.Predicate, a, b *expr.Node) bool {
	aRels := map[string]bool{}
	for _, r := range a.Relations() {
		aRels[r] = true
	}
	bRels := map[string]bool{}
	for _, r := range b.Relations() {
		bRels[r] = true
	}
	touchesA, touchesB := false, false
	for _, rel := range predicate.Rels(p) {
		switch {
		case aRels[rel]:
			touchesA = true
		case bRels[rel]:
			touchesB = true
		default:
			return false
		}
	}
	return touchesA && touchesB
}
