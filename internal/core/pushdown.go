package core

import (
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
)

// §4: "Unlike joins, we do not usually want to explore alternative
// positions [for restrictions], but instead just want to do restrictions
// as early as possible." PushRestrictions implements that: it splits
// every restriction into conjuncts and sinks each one as deep as legality
// allows:
//
//   - through a regular join, into whichever operand covers the
//     conjunct's relations (a conjunct spanning both sides merges into
//     the join predicate — the paper's "moved into the predicate");
//   - through an outerjoin, into the preserved operand only. A conjunct
//     over the null-supplied side must NOT move below the padding (σ
//     discards padded rows the inner input never produced) — that case
//     is Simplify's job, which converts the outerjoin first when the
//     conjunct is strong.
//
// Run Simplify before PushRestrictions so strong restrictions first
// convert outerjoins to joins and then sink through them.
func PushRestrictions(q *expr.Node) *expr.Node {
	return pushInto(q, nil)
}

// pushInto rewrites n with the pending conjuncts applied as deep as
// possible; conjuncts that cannot sink any further wrap n in a Restrict.
func pushInto(n *expr.Node, pending []predicate.Predicate) *expr.Node {
	switch n.Op {
	case expr.Restrict:
		return pushInto(n.Left, append(append([]predicate.Predicate(nil), pending...),
			predicate.Conjuncts(n.Pred)...))
	case expr.Project:
		// Keep restrictions above projections: a projection may drop the
		// referenced attributes.
		child := pushInto(n.Left, nil)
		out := expr.NewProject(child, n.ProjAttrs, n.ProjDedup)
		return wrap(out, pending)
	case expr.Join:
		leftRels := relSet(n.Left)
		rightRels := relSet(n.Right)
		var toLeft, toRight, merge, stay []predicate.Predicate
		for _, c := range pending {
			switch {
			case coveredBy(c, leftRels):
				toLeft = append(toLeft, c)
			case coveredBy(c, rightRels):
				toRight = append(toRight, c)
			case coveredBy(c, union(leftRels, rightRels)):
				merge = append(merge, c) // spans both sides: join it
			default:
				stay = append(stay, c)
			}
		}
		pred := n.Pred
		if len(merge) > 0 {
			pred = predicate.NewAnd(append([]predicate.Predicate{pred}, merge...)...)
		}
		out := expr.NewJoin(pushInto(n.Left, toLeft), pushInto(n.Right, toRight), pred)
		return wrap(out, stay)
	case expr.LeftOuter, expr.RightOuter:
		preservedLeft := n.Op == expr.LeftOuter
		pres, null := n.Left, n.Right
		if !preservedLeft {
			pres, null = n.Right, n.Left
		}
		presRels := relSet(pres)
		var toPres, stay []predicate.Predicate
		for _, c := range pending {
			if coveredBy(c, presRels) {
				toPres = append(toPres, c)
			} else {
				stay = append(stay, c)
			}
		}
		newPres := pushInto(pres, toPres)
		newNull := pushInto(null, nil)
		var out *expr.Node
		if preservedLeft {
			out = &expr.Node{Op: n.Op, Left: newPres, Right: newNull, Pred: n.Pred}
		} else {
			out = &expr.Node{Op: n.Op, Left: newNull, Right: newPres, Pred: n.Pred}
		}
		return wrap(out, stay)
	case expr.Leaf:
		return wrap(n, pending)
	default:
		// Antijoin, semijoin, GOJ, full outerjoin: recurse without
		// sinking across (their null/consumption semantics each need
		// their own legality argument; restrictions stay above).
		out := n
		if n.Left != nil || n.Right != nil {
			cp := *n
			if n.Left != nil {
				cp.Left = pushInto(n.Left, nil)
			}
			if n.Right != nil {
				cp.Right = pushInto(n.Right, nil)
			}
			out = &cp
		}
		return wrap(out, pending)
	}
}

func wrap(n *expr.Node, pending []predicate.Predicate) *expr.Node {
	if len(pending) == 0 {
		return n
	}
	return expr.NewRestrict(n, predicate.NewAnd(pending...))
}

func relSet(n *expr.Node) map[string]bool {
	out := map[string]bool{}
	for _, r := range n.Relations() {
		out[r] = true
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for r := range a {
		out[r] = true
	}
	for r := range b {
		out[r] = true
	}
	return out
}

func coveredBy(p predicate.Predicate, rels map[string]bool) bool {
	for _, r := range predicate.Rels(p) {
		if !rels[r] {
			return false
		}
	}
	return true
}
