// Package parse reads join/outerjoin expressions in the paper's infix
// notation, for the command-line tools and examples:
//
//	expr :=  term { op '[' pred ']' term }        (left-associative)
//	op   :=  '-' | '->' | '<-'                    (join, outerjoin, symmetric outerjoin)
//	term :=  IDENT | '(' expr ')'
//	pred :=  orterm { 'or' orterm }
//	orterm := factor { 'and' factor }
//	factor := operand cmp operand
//	        | operand 'is' ['not'] 'null'
//	cmp  :=  '=' | '<>' | '<' | '<=' | '>' | '>='
//	operand := IDENT '.' IDENT | NUMBER | 'string'
//
// Example: (R -[R.a = S.a] S) ->[S.b = T.b or T.b is null] T
package parse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

type tkind uint8

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tString
	tDot
	tLParen
	tRParen
	tLBracket
	tRBracket
	tJoin       // -
	tLeftOuter  // ->
	tRightOuter // <-
	tCmp        // = <> < <= > >=
)

type tok struct {
	kind tkind
	text string
}

func lex(src string) ([]tok, error) {
	runes := []rune(src)
	var out []tok
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '.':
			out = append(out, tok{tDot, "."})
			i++
		case r == '(':
			out = append(out, tok{tLParen, "("})
			i++
		case r == ')':
			out = append(out, tok{tRParen, ")"})
			i++
		case r == '[':
			out = append(out, tok{tLBracket, "["})
			i++
		case r == ']':
			out = append(out, tok{tRBracket, "]"})
			i++
		case r == '-':
			if i+1 < len(runes) && runes[i+1] == '>' {
				out = append(out, tok{tLeftOuter, "->"})
				i += 2
			} else if i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
				j := scanNumber(runes, i+1)
				out = append(out, tok{tNumber, string(runes[i:j])})
				i = j
			} else {
				out = append(out, tok{tJoin, "-"})
				i++
			}
		case r == '<':
			switch {
			case i+1 < len(runes) && runes[i+1] == '-':
				out = append(out, tok{tRightOuter, "<-"})
				i += 2
			case i+1 < len(runes) && runes[i+1] == '>':
				out = append(out, tok{tCmp, "<>"})
				i += 2
			case i+1 < len(runes) && runes[i+1] == '=':
				out = append(out, tok{tCmp, "<="})
				i += 2
			default:
				out = append(out, tok{tCmp, "<"})
				i++
			}
		case r == '>':
			if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, tok{tCmp, ">="})
				i += 2
			} else {
				out = append(out, tok{tCmp, ">"})
				i++
			}
		case r == '=':
			out = append(out, tok{tCmp, "="})
			i++
		case r == '\'':
			j := i + 1
			for j < len(runes) && runes[j] != '\'' {
				j++
			}
			if j >= len(runes) {
				return nil, fmt.Errorf("parse: unterminated string")
			}
			out = append(out, tok{tString, string(runes[i+1 : j])})
			i = j + 1
		case unicode.IsDigit(r):
			j := scanNumber(runes, i)
			out = append(out, tok{tNumber, string(runes[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_' || r == '@':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) ||
				runes[j] == '_' || runes[j] == '#' || runes[j] == '@') {
				j++
			}
			out = append(out, tok{tIdent, string(runes[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("parse: unexpected character %q", r)
		}
	}
	return append(out, tok{tEOF, ""}), nil
}

// scanNumber consumes a numeric literal starting at i: digits and dots,
// optionally followed by a scientific-notation exponent (e.g. 1e+06, the
// form strconv renders large floats in). Returns the index past the
// literal; strconv validates the exact shape later.
func scanNumber(runes []rune, i int) int {
	j := i
	for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
		j++
	}
	if j < len(runes) && (runes[j] == 'e' || runes[j] == 'E') {
		k := j + 1
		if k < len(runes) && (runes[k] == '+' || runes[k] == '-') {
			k++
		}
		if k < len(runes) && unicode.IsDigit(runes[k]) {
			for k < len(runes) && unicode.IsDigit(runes[k]) {
				k++
			}
			return k
		}
	}
	return j
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tkind, what string) (tok, error) {
	t := p.peek()
	if t.kind != k {
		return tok{}, fmt.Errorf("parse: expected %s, got %q", what, t.text)
	}
	return p.next(), nil
}

// Expr parses a join/outerjoin expression.
func Expr(src string) (*expr.Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("parse: trailing input %q", p.peek().text)
	}
	return n, nil
}

// Pred parses a predicate on its own.
func Pred(src string) (predicate.Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pr, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("parse: trailing input %q", p.peek().text)
	}
	return pr, nil
}

func (p *parser) parseExpr() (*expr.Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var mk func(l, r *expr.Node, pr predicate.Predicate) *expr.Node
		switch p.peek().kind {
		case tJoin:
			mk = expr.NewJoin
		case tLeftOuter:
			mk = expr.NewOuter
		case tRightOuter:
			mk = expr.NewRightOuter
		default:
			return left, nil
		}
		p.next()
		if _, err := p.expect(tLBracket, "'['"); err != nil {
			return nil, err
		}
		pr, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = mk(left, right, pr)
	}
}

func (p *parser) parseTerm() (*expr.Node, error) {
	t := p.peek()
	switch t.kind {
	case tIdent:
		// sigma[pred](expr) — a restriction (§4).
		if strings.EqualFold(t.text, "sigma") && p.toks[p.pos+1].kind == tLBracket {
			p.next()
			p.next() // '['
			pr, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket, "']'"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tLParen, "'('"); err != nil {
				return nil, err
			}
			child, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return nil, err
			}
			return expr.NewRestrict(child, pr), nil
		}
		p.next()
		return expr.NewLeaf(t.text), nil
	case tLParen:
		p.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("parse: expected relation or '(', got %q", t.text)
	}
}

func (p *parser) parsePred() (predicate.Predicate, error) {
	left, err := p.parseAndPred()
	if err != nil {
		return nil, err
	}
	disj := []predicate.Predicate{left}
	for p.isKeyword("or") {
		p.next()
		right, err := p.parseAndPred()
		if err != nil {
			return nil, err
		}
		disj = append(disj, right)
	}
	return predicate.NewOr(disj...), nil
}

func (p *parser) parseAndPred() (predicate.Predicate, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	conj := []predicate.Predicate{left}
	for p.isKeyword("and") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		conj = append(conj, right)
	}
	return predicate.NewAnd(conj...), nil
}

func (p *parser) isKeyword(word string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

func (p *parser) parseFactor() (predicate.Predicate, error) {
	// Parenthesized sub-predicate (also the rendered form of Or).
	if p.peek().kind == tLParen {
		p.next()
		inner, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL.
	if p.isKeyword("is") {
		p.next()
		negated := false
		if p.isKeyword("not") {
			p.next()
			negated = true
		}
		if !p.isKeyword("null") {
			return nil, fmt.Errorf("parse: expected NULL after IS, got %q", p.peek().text)
		}
		p.next()
		if left.IsConst() {
			return nil, fmt.Errorf("parse: IS NULL needs an attribute")
		}
		if negated {
			return predicate.NewIsNotNull(left.Attr()), nil
		}
		return predicate.NewIsNull(left.Attr()), nil
	}
	opTok, err := p.expect(tCmp, "comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	var op predicate.CmpOp
	switch opTok.text {
	case "=":
		op = predicate.EqOp
	case "<>":
		op = predicate.NeOp
	case "<":
		op = predicate.LtOp
	case "<=":
		op = predicate.LeOp
	case ">":
		op = predicate.GtOp
	case ">=":
		op = predicate.GeOp
	}
	return predicate.Cmp(op, left, right), nil
}

func (p *parser) parseOperand() (predicate.Term, error) {
	t := p.peek()
	switch t.kind {
	case tIdent:
		p.next()
		if _, err := p.expect(tDot, "'.' (attributes are Rel.Name)"); err != nil {
			return predicate.Term{}, err
		}
		f, err := p.expect(tIdent, "attribute name")
		if err != nil {
			return predicate.Term{}, err
		}
		return predicate.Col(relation.A(t.text, f.text)), nil
	case tNumber:
		p.next()
		if n, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return predicate.Const(relation.Int(n)), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return predicate.Term{}, fmt.Errorf("parse: bad number %q", t.text)
		}
		return predicate.Const(relation.Float(f)), nil
	case tString:
		p.next()
		return predicate.Const(relation.Str(t.text)), nil
	default:
		return predicate.Term{}, fmt.Errorf("parse: expected attribute or literal, got %q", t.text)
	}
}
