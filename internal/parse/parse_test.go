package parse

import (
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func TestExprShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // expr.Node.String (no predicates)
	}{
		{"R", "R"},
		{"R -[R.a = S.a] S", "(R - S)"},
		{"R ->[R.a = S.a] S", "(R -> S)"},
		{"R <-[R.a = S.a] S", "(R <- S)"},
		{"(R -[R.a = S.a] S) ->[S.a = T.a] T", "((R - S) -> T)"},
		{"R ->[R.a = S.a] (S -[S.a = T.a] T)", "(R -> (S - T))"},
		// Left associativity without parens.
		{"R -[R.a = S.a] S -[S.a = T.a] T", "((R - S) - T)"},
	}
	for _, tc := range cases {
		n, err := Expr(tc.src)
		if err != nil {
			t.Fatalf("Expr(%q): %v", tc.src, err)
		}
		if n.String() != tc.want {
			t.Errorf("Expr(%q) = %s, want %s", tc.src, n, tc.want)
		}
	}
}

func TestSigmaSyntax(t *testing.T) {
	n, err := Expr("sigma[R.a = 1](R ->[R.a = S.a] S)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != expr.Restrict || n.Left.Op != expr.LeftOuter {
		t.Fatalf("shape = %v", n)
	}
	if n.String() != "sigma[R.a = 1]((R -> S))" {
		t.Errorf("render = %q", n.String())
	}
	// Nested sigma and sigma over a leaf.
	n2, err := Expr("sigma[S.a > 2](sigma[R.a = 1](R) -[R.a = S.a] S)")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Op != expr.Restrict || n2.Left.Op != expr.Join || n2.Left.Left.Op != expr.Restrict {
		t.Fatalf("nested shape = %v", n2)
	}
	// A relation literally named sigma still parses as a leaf.
	n3, err := Expr("sigma -[sigma.a = S.a] S")
	if err != nil || n3.Left.Op != expr.Leaf || n3.Left.Rel != "sigma" {
		t.Fatalf("sigma-named relation: %v %v", n3, err)
	}
	for _, bad := range []string{
		"sigma[R.a = 1]", "sigma[R.a = 1](R", "sigma[R.a](R)", "sigma[](R)",
	} {
		if _, err := Expr(bad); err == nil {
			t.Errorf("Expr(%q) should fail", bad)
		}
	}
}

func TestExprRoundTripsThroughGraph(t *testing.T) {
	n, err := Expr("(R -[R.a = S.a and R.b = S.b] S) ->[S.a = T.a] T")
	if err != nil {
		t.Fatal(err)
	}
	g, err := expr.GraphOf(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || len(g.Edges()) != 2 {
		t.Fatalf("graph: %v", g)
	}
}

func TestPredShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"R.a = S.a", "R.a = S.a"},
		{"R.a <> S.a", "R.a <> S.a"},
		{"R.a < 3", "R.a < 3"},
		{"R.a <= 3.5", "R.a <= 3.5"},
		{"R.a > 'x'", "R.a > 'x'"},
		{"R.a >= -2", "R.a >= -2"},
		{"R.a is null", "R.a is null"},
		{"R.a is not null", "R.a is not null"},
		{"R.a = S.a and R.b = S.b", "R.a = S.a and R.b = S.b"},
		{"R.a = S.a or R.a is null", "(R.a = S.a or R.a is null)"},
		{"R.a = S.a and R.b = S.b or R.c = S.c", "(R.a = S.a and R.b = S.b or R.c = S.c)"},
	}
	for _, tc := range cases {
		p, err := Pred(tc.src)
		if err != nil {
			t.Fatalf("Pred(%q): %v", tc.src, err)
		}
		if p.String() != tc.want {
			t.Errorf("Pred(%q) = %q, want %q", tc.src, p, tc.want)
		}
	}
}

func TestPredEvaluates(t *testing.T) {
	p, err := Pred("R.a = 1 or R.a is null")
	if err != nil {
		t.Fatal(err)
	}
	sch := relation.SchemeOf("R", "a")
	if p.Eval(relation.MustTuple(sch, relation.Int(1))) != predicate.True {
		t.Error("1 should match")
	}
	if p.Eval(relation.MustTuple(sch, relation.Null())) != predicate.True {
		t.Error("null should match via is-null")
	}
	if p.Eval(relation.MustTuple(sch, relation.Int(2))) != predicate.False {
		t.Error("2 should not match")
	}
}

func TestParseErrors(t *testing.T) {
	exprCases := []string{
		"", "(", "(R", "R -", "R -[", "R -[R.a = S.a", "R -[R.a = S.a]",
		"R S", "R -[] S", "R -[R.a] S", "R -[R.a =] S", "R -[R = S.a] S",
		"R -[R.a = S.a] S extra", "R -['u] S", "R ?",
		"R -[R.a is S.a] S", "R -[3 is null] S",
	}
	for _, src := range exprCases {
		if _, err := Expr(src); err == nil {
			t.Errorf("Expr(%q) should fail", src)
		}
	}
	predCases := []string{"", "R.a", "R.a = = 1", "R.a = 1 extra", "R.a is", "R.a is not"}
	for _, src := range predCases {
		if _, err := Pred(src); err == nil {
			t.Errorf("Pred(%q) should fail", src)
		}
	}
}

func TestLexNegativeAndFloats(t *testing.T) {
	p, err := Pred("R.a = -3")
	if err != nil || p.String() != "R.a = -3" {
		t.Errorf("negative literal: %v %v", p, err)
	}
	if _, err := Pred("R.a = 1.2.3"); err == nil {
		t.Error("malformed float should fail")
	}
}
