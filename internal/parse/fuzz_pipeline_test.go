package parse

import (
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/plancache"
)

// FuzzParse drives the full front half of the pipeline on arbitrary
// input: parse, analyze, and — when the query graph is defined —
// fingerprint it for the plan cache. Nothing may panic, and the
// fingerprint must be stable across the parse → render → parse round
// trip: the rendered form is a different string for the same query, so
// a fingerprint mismatch would mean syntactically equal queries miss
// each other in the cache.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R",
		"R -[R.a = S.a] S",
		"(R -[R.a = S.a] S) ->[S.a = T.a] T",
		"(R ->[R.a = S.a] S) -[R.b = T.b] T",
		"sigma[R.a = 1](R -[R.a = S.a] S)",
		"R -[R.a = S.a and R.b = S.b] S",
		"((((A -[A.a=B.a] B) -[B.a=C.a] C) ->[C.a=D.a] D) <-[D.a=E.a] E)",
		"R ->[R.a = S.a or S.a is null] S",
		"R -[R.a = R.a] R",
		"sigma[",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Expr(src)
		if err != nil {
			return
		}
		// Analysis must never panic, defined graph or not.
		a, err := core.Analyze(q)
		if err != nil {
			return
		}
		fp := plancache.Of(a.Graph)

		rendered := q.StringWithPreds()
		back, err := Expr(rendered)
		if err != nil {
			t.Fatalf("rendered form does not parse: %q from %q: %v", rendered, src, err)
		}
		a2, err := core.Analyze(back)
		if err != nil {
			t.Fatalf("rendered form lost its graph: %q: %v", rendered, err)
		}
		if fp2 := plancache.Of(a2.Graph); fp2 != fp {
			t.Fatalf("fingerprint unstable across render round trip:\n%q -> %s\n%q -> %s",
				src, fp, rendered, fp2)
		}
		// Free-reorderability is a graph property; it must round-trip too.
		if a2.Free != a.Free {
			t.Fatalf("free verdict unstable across render round trip: %q %v vs %q %v",
				src, a.Free, rendered, a2.Free)
		}
	})
}
