package parse

import (
	"testing"

	"freejoin/internal/expr"
)

// FuzzExpr checks the expression parser never panics and that every
// successfully parsed expression round-trips through rendering: parsing
// the canonical rendering yields an equal tree.
func FuzzExpr(f *testing.F) {
	for _, seed := range []string{
		"R",
		"R -[R.a = S.a] S",
		"(R -[R.a = S.a] S) ->[S.a = T.a] T",
		"R <-[R.a = S.a] S",
		"R ->[R.a = S.a or S.a is null] S",
		"R -[R.a = 1.5 and R.b <> 'x'] S",
		"R -[R.a >= -3] S",
		"((((A -[A.a=B.a] B) -[B.a=C.a] C) ->[C.a=D.a] D) <-[D.a=E.a] E)",
		"R -[",
		"R - S",
		"'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Expr(src)
		if err != nil {
			return
		}
		rendered := q.StringWithPreds()
		// Rendering uses the same surface syntax, so it must re-parse to
		// an equal tree.
		back, err := Expr(rendered)
		if err != nil {
			t.Fatalf("rendered form does not parse: %q from %q: %v", rendered, src, err)
		}
		if !back.Equal(q) {
			t.Fatalf("round trip mismatch: %q -> %q -> %q", src, rendered, back.StringWithPreds())
		}
	})
}

// FuzzPred checks the predicate parser never panics and round-trips.
func FuzzPred(f *testing.F) {
	for _, seed := range []string{
		"R.a = S.a",
		"R.a = S.a or S.a is null",
		"R.a < 3 and R.b >= 2.5 and R.c <> 'x'",
		"R.a is not null",
		"R.a =",
		"1 = 2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Pred(src)
		if err != nil {
			return
		}
		back, err := Pred(p.String())
		if err != nil {
			t.Fatalf("rendered predicate does not parse: %q from %q: %v", p.String(), src, err)
		}
		if back.String() != p.String() {
			t.Fatalf("round trip mismatch: %q -> %q -> %q", src, p.String(), back.String())
		}
	})
}

// FuzzExprGraph checks that graph construction on parsed expressions
// never panics (it may return errors).
func FuzzExprGraph(f *testing.F) {
	f.Add("(R -[R.a = S.a] S) ->[S.a = T.a] T")
	f.Add("R ->[R.a = R.b] S")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Expr(src)
		if err != nil {
			return
		}
		if g, err := expr.GraphOf(q); err == nil {
			g.IsNice()
			g.IsNiceSemi()
			if _, err := expr.CountITs(g, true); err != nil {
				// Disconnected graphs cannot arise from a parsed tree.
				t.Fatalf("connected graph failed to count: %v", err)
			}
		}
	})
}
