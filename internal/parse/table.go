package parse

// Table-literal and byte-size parsing shared by the interactive shell
// (cmd/ojshell) and the query server (internal/server): both speak the
// same "table NAME(col, ...) = (v, ...), ..." command syntax.

import (
	"fmt"
	"strconv"
	"strings"

	"freejoin/internal/relation"
)

// TableLiteral parses "NAME(col, col) = (1, 'x'), (2, null)" into a
// named relation. Values are int, float, 'string', true/false, and null
// (or "-") for the null value.
func TableLiteral(src string) (string, *relation.Relation, error) {
	head, data, found := strings.Cut(src, "=")
	if !found {
		return "", nil, fmt.Errorf("usage: table NAME(col, ...) = (v, ...), ...")
	}
	head = strings.TrimSpace(head)
	open := strings.IndexByte(head, '(')
	if open < 0 || !strings.HasSuffix(head, ")") {
		return "", nil, fmt.Errorf("table header must be NAME(col, ...)")
	}
	name := strings.TrimSpace(head[:open])
	if name == "" {
		return "", nil, fmt.Errorf("table name is empty")
	}
	var cols []string
	seen := make(map[string]bool)
	for _, c := range strings.Split(head[open+1:len(head)-1], ",") {
		c = strings.TrimSpace(c)
		// Validate here rather than letting the scheme constructor panic
		// on malformed input: a fuzzer (or a corrupted protocol line) can
		// send anything.
		if c == "" {
			return "", nil, fmt.Errorf("table %s: empty column name", name)
		}
		if seen[c] {
			return "", nil, fmt.Errorf("table %s: duplicate column %q", name, c)
		}
		seen[c] = true
		cols = append(cols, c)
	}
	rel := relation.New(relation.SchemeOf(name, cols...))
	rows, err := Rows(data, len(cols))
	if err != nil {
		return "", nil, err
	}
	for _, r := range rows {
		rel.AppendRaw(r)
	}
	return name, rel, nil
}

// Rows parses "(v, ...), (v, ...)" with int, float, 'string', null.
func Rows(data string, arity int) ([][]relation.Value, error) {
	var out [][]relation.Value
	data = strings.TrimSpace(data)
	for data != "" {
		if !strings.HasPrefix(data, "(") {
			return nil, fmt.Errorf("expected '(' at %q", data)
		}
		end := strings.IndexByte(data, ')')
		if end < 0 {
			return nil, fmt.Errorf("missing ')' in %q", data)
		}
		fields := strings.Split(data[1:end], ",")
		if len(fields) != arity {
			return nil, fmt.Errorf("row has %d values, want %d", len(fields), arity)
		}
		row := make([]relation.Value, len(fields))
		for i, f := range fields {
			v, err := Value(strings.TrimSpace(f))
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		data = strings.TrimSpace(data[end+1:])
		data = strings.TrimPrefix(data, ",")
		data = strings.TrimSpace(data)
	}
	return out, nil
}

// Value parses one literal value: null/-, 'string', true/false, int,
// float.
func Value(f string) (relation.Value, error) {
	switch {
	case strings.EqualFold(f, "null"), f == "-":
		return relation.Null(), nil
	case strings.HasPrefix(f, "'") && strings.HasSuffix(f, "'") && len(f) >= 2:
		return relation.Str(f[1 : len(f)-1]), nil
	case strings.EqualFold(f, "true"):
		return relation.Bool(true), nil
	case strings.EqualFold(f, "false"):
		return relation.Bool(false), nil
	default:
		if i, err := strconv.ParseInt(f, 10, 64); err == nil {
			return relation.Int(i), nil
		}
		if fl, err := strconv.ParseFloat(f, 64); err == nil {
			return relation.Float(fl), nil
		}
		return relation.Value{}, fmt.Errorf("cannot parse value %q", f)
	}
}

// Bytes parses a byte size: "4096", "64KB", "2MB".
func Bytes(v string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(v)
	switch {
	case strings.HasSuffix(upper, "MB"):
		mult, v = 1<<20, v[:len(v)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, v = 1<<10, v[:len(v)-2]
	case strings.HasSuffix(upper, "B"):
		v = v[:len(v)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("cannot parse byte size %q (use N, NKB or NMB)", v)
	}
	return n * mult, nil
}
