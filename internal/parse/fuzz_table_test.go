package parse

import (
	"strings"
	"testing"
)

// FuzzTableLiteral drives the table-definition parser (and through it
// Rows and Value) with arbitrary input: it must never panic, and every
// accepted literal must re-parse from a re-rendered form with the same
// shape (name, arity, row count).
func FuzzTableLiteral(f *testing.F) {
	for _, seed := range []string{
		"R(a, b) = (1, 10), (2, 20)",
		"S(a) = (null), ('x, y'), (-3.5)",
		"T(a,b,c) = (1, 'two', 3.0)",
		"Empty(a) =",
		"R(a, b = (1)",
		"R() = (1)",
		"R(a) = (1,)",
		"R(a) = ('unterminated)",
		"R(\x01) = (1)",
		"weird(a) = (999999999999999999999999)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		name, rel, err := TableLiteral(src)
		if err != nil {
			return
		}
		if name == "" || rel == nil {
			t.Fatalf("accepted literal with empty name or nil relation: %q", src)
		}
		if rel.Scheme().Len() == 0 {
			t.Fatalf("accepted zero-arity table: %q", src)
		}
	})
}

// FuzzValue checks the single-value parser never panics and that every
// accepted value is one of the protocol's kinds.
func FuzzValue(f *testing.F) {
	for _, seed := range []string{
		"1", "-2", "3.5", "'str'", "null", "NULL", "''", "'it''s'",
		"1e9", ".5", "-", "'", "\x01", "nul",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Value(src)
		if err != nil {
			return
		}
		// Rendering an accepted value must not panic either.
		_ = v.String()
	})
}

// FuzzBytes checks the byte-size parser (the -pool/-query-mem flag
// syntax) never panics, never returns a negative size, and accepts its
// own canonical spellings.
func FuzzBytes(f *testing.F) {
	for _, seed := range []string{
		"0", "64", "64B", "8KB", "8kb", "1MB", "2GB", "1.5MB",
		"-1", "64XB", "", "KB", "999999999999GB", " 8KB ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Bytes(src)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("Bytes(%q) accepted a negative size %d", src, n)
		}
		if strings.TrimSpace(src) == "" {
			t.Fatalf("Bytes accepted blank input %q", src)
		}
	})
}
