package expr

import (
	"strings"
	"testing"

	"freejoin/internal/algebra"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// eqp returns the equijoin predicate u.a = v.a.
func eqp(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

func testDB() DB {
	return DB{
		"R": relation.FromRows("R", []string{"a"}, []any{1}, []any{2}, []any{3}),
		"S": relation.FromRows("S", []string{"a"}, []any{2}, []any{3}, []any{4}),
		"T": relation.FromRows("T", []string{"a"}, []any{3}, []any{5}),
	}
}

func TestConstructorsAndBasics(t *testing.T) {
	q := NewOuter(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	if q.Size() != 3 {
		t.Errorf("Size = %d", q.Size())
	}
	rels := q.Relations()
	if len(rels) != 3 || rels[0] != "R" || rels[2] != "T" {
		t.Errorf("Relations = %v", rels)
	}
	set, err := q.RelationSet()
	if err != nil || len(set) != 3 {
		t.Errorf("RelationSet = %v, %v", set, err)
	}
	if !q.IsJoinLike() || NewLeaf("R").IsJoinLike() {
		t.Error("IsJoinLike broken")
	}
	dup := NewJoin(NewLeaf("R"), NewLeaf("R"), eqp("R", "R"))
	if _, err := dup.RelationSet(); err == nil {
		t.Error("duplicate relation must be rejected")
	}
}

func TestString(t *testing.T) {
	q := NewOuter(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	if got := q.String(); got != "((R - S) -> T)" {
		t.Errorf("String = %q", got)
	}
	wp := q.StringWithPreds()
	if !strings.Contains(wp, "R.a = S.a") || !strings.Contains(wp, "S.a = T.a") {
		t.Errorf("StringWithPreds = %q", wp)
	}
	ro := NewRightOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if ro.String() != "(R <- S)" {
		t.Errorf("RightOuter renders %q", ro.String())
	}
	aj := NewAnti(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if aj.String() != "(R > S)" {
		t.Errorf("Anti renders %q", aj.String())
	}
	sg := NewRestrict(NewLeaf("R"), predicate.EqConst(relation.A("R", "a"), relation.Int(1)))
	if !strings.HasPrefix(sg.String(), "sigma[") {
		t.Errorf("Restrict renders %q", sg.String())
	}
	pj := NewProject(NewLeaf("R"), []relation.Attr{relation.A("R", "a")}, true)
	if !strings.HasPrefix(pj.String(), "pi[") {
		t.Errorf("Project renders %q", pj.String())
	}
}

func TestPredKeyCanonicalizesConjunctOrder(t *testing.T) {
	p1 := predicate.NewAnd(eqp("R", "S"), eqp("S", "T"))
	p2 := predicate.NewAnd(eqp("S", "T"), eqp("R", "S"))
	a := NewJoin(NewLeaf("R"), NewLeaf("S"), p1)
	b := NewJoin(NewLeaf("R"), NewLeaf("S"), p2)
	if a.StringWithPreds() != b.StringWithPreds() {
		t.Error("conjunct order must not affect the canonical key")
	}
	if !a.Equal(b) {
		t.Error("Equal must ignore conjunct order")
	}
	if a.Equal(NewLeaf("R")) || !a.Equal(a) {
		t.Error("Equal basic cases broken")
	}
}

func TestEvalMatchesAlgebra(t *testing.T) {
	db := testDB()
	r, s := db["R"], db["S"]
	p := eqp("R", "S")

	cases := []struct {
		name string
		q    *Node
		want func() (*relation.Relation, error)
	}{
		{"leaf", NewLeaf("R"), func() (*relation.Relation, error) { return r, nil }},
		{"join", NewJoin(NewLeaf("R"), NewLeaf("S"), p),
			func() (*relation.Relation, error) { return algebra.Join(r, s, p) }},
		{"leftouter", NewOuter(NewLeaf("R"), NewLeaf("S"), p),
			func() (*relation.Relation, error) { return algebra.LeftOuterJoin(r, s, p) }},
		{"rightouter", NewRightOuter(NewLeaf("R"), NewLeaf("S"), p),
			func() (*relation.Relation, error) { return algebra.LeftOuterJoin(s, r, p) }},
		{"anti", NewAnti(NewLeaf("R"), NewLeaf("S"), p),
			func() (*relation.Relation, error) { return algebra.Antijoin(r, s, p) }},
		{"rightanti", &Node{Op: RightAnti, Left: NewLeaf("R"), Right: NewLeaf("S"), Pred: p},
			func() (*relation.Relation, error) { return algebra.Antijoin(s, r, p) }},
		{"semi", NewSemi(NewLeaf("R"), NewLeaf("S"), p),
			func() (*relation.Relation, error) { return algebra.Semijoin(r, s, p) }},
		{"goj", NewGOJ(NewLeaf("R"), NewLeaf("S"), p, r.Scheme().Attrs()),
			func() (*relation.Relation, error) {
				return algebra.GeneralizedOuterJoin(r, s, p, r.Scheme().Attrs())
			}},
		{"restrict", NewRestrict(NewLeaf("R"), predicate.EqConst(relation.A("R", "a"), relation.Int(2))),
			func() (*relation.Relation, error) {
				return algebra.Restrict(r, predicate.EqConst(relation.A("R", "a"), relation.Int(2)))
			}},
		{"project", NewProject(NewJoin(NewLeaf("R"), NewLeaf("S"), p), []relation.Attr{relation.A("S", "a")}, true),
			func() (*relation.Relation, error) {
				j, err := algebra.Join(r, s, p)
				if err != nil {
					return nil, err
				}
				return algebra.Project(j, []relation.Attr{relation.A("S", "a")}, true)
			}},
	}
	for _, tc := range cases {
		got, err := tc.q.Eval(db)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := tc.want()
		if err != nil {
			t.Fatalf("%s want: %v", tc.name, err)
		}
		if !got.EqualBag(want) {
			t.Errorf("%s: Eval mismatch:\ngot\n%v\nwant\n%v", tc.name, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	db := testDB()
	if _, err := NewLeaf("NOPE").Eval(db); err == nil {
		t.Error("unknown relation must fail")
	}
	bad := NewJoin(NewLeaf("R"), NewLeaf("S"), predicate.NewIsNull(relation.A("Z", "z")))
	if _, err := bad.Eval(db); err == nil {
		t.Error("unbindable predicate must fail")
	}
	if _, err := NewJoin(NewLeaf("NOPE"), NewLeaf("S"), eqp("R", "S")).Eval(db); err == nil {
		t.Error("error in left subtree must propagate")
	}
	if _, err := NewJoin(NewLeaf("R"), NewLeaf("NOPE"), eqp("R", "S")).Eval(db); err == nil {
		t.Error("error in right subtree must propagate")
	}
	if _, err := NewRestrict(NewLeaf("NOPE"), predicate.TruePred).Eval(db); err == nil {
		t.Error("restrict child error must propagate")
	}
	if _, err := (&Node{Op: Op(99), Left: NewLeaf("R"), Right: NewLeaf("S")}).Eval(db); err == nil {
		t.Error("unknown op must fail")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		Leaf: "leaf", Join: "join", LeftOuter: "leftouter", RightOuter: "rightouter",
		LeftAnti: "antijoin", RightAnti: "rightanti", Semijoin: "semijoin",
		GOJ: "goj", Restrict: "restrict", Project: "project",
	} {
		if op.String() != want {
			t.Errorf("Op %d renders %q, want %q", op, op.String(), want)
		}
	}
	if !strings.Contains(Op(77).String(), "77") {
		t.Error("unknown op rendering")
	}
}
