package expr

import (
	"fmt"

	"freejoin/internal/predicate"
)

// Attribute visibility. Join and outerjoin operators concatenate schemes,
// so every relation in a subtree stays visible. Semijoins do not: the
// consumed side's attributes are gone from the output, so an implementing
// tree of a semijoin graph can be *syntactically* an IT yet reference
// attributes that no longer exist — the reason "semijoin edges in series"
// are a forbidden subgraph (§6.3). CheckVisibility is the static test;
// evaluation of an invalid tree would fail at predicate binding.

// VisibleRels returns the ground relations whose attributes appear in the
// subtree's output scheme.
func (n *Node) VisibleRels() map[string]bool {
	switch n.Op {
	case Leaf:
		return map[string]bool{n.Rel: true}
	case Restrict:
		return n.Left.VisibleRels()
	case Project:
		// Approximation: projection restricts attributes, not whole
		// relations; treat every input relation as still visible.
		return n.Left.VisibleRels()
	case Semijoin, LeftAnti:
		return n.Left.VisibleRels()
	case RightSemi, RightAnti:
		return n.Right.VisibleRels()
	default:
		out := n.Left.VisibleRels()
		for r := range n.Right.VisibleRels() {
			out[r] = true
		}
		return out
	}
}

// CheckVisibility verifies that every operator's predicate references
// only relations visible in its operands' outputs. Trees built from
// join/outerjoin operators always pass; semijoin (and antijoin) trees can
// fail.
func CheckVisibility(n *Node) error {
	switch n.Op {
	case Leaf:
		return nil
	case Restrict:
		if err := CheckVisibility(n.Left); err != nil {
			return err
		}
		return predVisible(n.Pred, n.Left.VisibleRels())
	case Project:
		return CheckVisibility(n.Left)
	}
	if err := CheckVisibility(n.Left); err != nil {
		return err
	}
	if err := CheckVisibility(n.Right); err != nil {
		return err
	}
	if n.Pred == nil {
		return nil
	}
	visible := n.Left.VisibleRels()
	for r := range n.Right.VisibleRels() {
		visible[r] = true
	}
	return predVisible(n.Pred, visible)
}

func predVisible(p predicate.Predicate, visible map[string]bool) error {
	for _, rel := range predicate.Rels(p) {
		if !visible[rel] {
			return fmt.Errorf("expr: predicate %v references %s, whose attributes a semijoin already consumed", p, rel)
		}
	}
	return nil
}
