package expr

import (
	"fmt"

	"freejoin/internal/predicate"
)

// Tree-level reorderability conditions — the second §6.3 conjecture:
// "we conjecture that there are also simple conditions on the expression
// trees. For example, the null-supplied input of an operand should not be
// created by a regular join, nor involved later as an operand of a
// regular join."
//
// TreeCondition makes the conjecture precise and checkable directly on a
// join/outerjoin expression, without building the query graph:
//
//  1. the null-supplied operand of an outerjoin contains no regular join
//     ("not created by a regular join", applied hereditarily — in a nice
//     graph the outerjoin forest hangs strictly outside the join core);
//  2. a regular join's predicate references no relation that an outerjoin
//     below has already null-supplied ("nor involved later as an operand
//     of a regular join");
//  3. an outerjoin's predicate does not target a relation that is already
//     null-supplied inside the null-supplied operand (the X → Y ← Z
//     pattern seen from the tree).
//
// TestTreeConditionMatchesGraphNiceness validates the conjecture
// empirically: on random well-formed trees, TreeCondition agrees exactly
// with the graph-side niceness test.

// TreeCondition checks the conditions above. It requires a well-formed
// join/outerjoin expression (each predicate referencing one relation per
// operand); other operators are rejected.
func TreeCondition(q *Node) (bool, string) {
	_, reason := treeWalk(q)
	return reason == "", reason
}

// treeWalk returns the set of null-supplied ("nullable") relations of the
// subtree and the first violation found ("" if none).
func treeWalk(n *Node) (nullable map[string]bool, reason string) {
	switch n.Op {
	case Leaf:
		return map[string]bool{}, ""
	case Join:
		ln, reason := treeWalk(n.Left)
		if reason != "" {
			return nil, reason
		}
		rn, reason := treeWalk(n.Right)
		if reason != "" {
			return nil, reason
		}
		for _, rel := range predicate.Rels(n.Pred) {
			if ln[rel] || rn[rel] {
				return nil, fmt.Sprintf(
					"regular join predicate %v references null-supplied relation %s", n.Pred, rel)
			}
		}
		for r := range rn {
			ln[r] = true
		}
		return ln, ""
	case LeftOuter, RightOuter:
		preserved, nullSide := n.Left, n.Right
		if n.Op == RightOuter {
			preserved, nullSide = n.Right, n.Left
		}
		if j := findJoin(nullSide); j != nil {
			return nil, fmt.Sprintf(
				"null-supplied operand %s of an outerjoin is created by a regular join", nullSide)
		}
		pn, reason := treeWalk(preserved)
		if reason != "" {
			return nil, reason
		}
		nn, reason := treeWalk(nullSide)
		if reason != "" {
			return nil, reason
		}
		nullRels := map[string]bool{}
		for _, rel := range nullSide.Relations() {
			nullRels[rel] = true
		}
		for _, rel := range predicate.Rels(n.Pred) {
			if nn[rel] {
				return nil, fmt.Sprintf(
					"outerjoin targets %s, already null-supplied inside its operand (X -> Y <- Z)", rel)
			}
			_ = nullRels
		}
		out := pn
		for r := range nullRels {
			out[r] = true
		}
		return out, ""
	default:
		return nil, fmt.Sprintf("operator %s is outside the join/outerjoin tree conditions", n.Op)
	}
}

// findJoin returns a Join node within the subtree, or nil.
func findJoin(n *Node) *Node {
	if n == nil || n.Op == Leaf {
		return nil
	}
	if n.Op == Join {
		return n
	}
	if j := findJoin(n.Left); j != nil {
		return j
	}
	return findJoin(n.Right)
}
