package expr

import (
	"freejoin/internal/graph"
)

// SplitMemo memoizes the two facts the split rule computes over and
// over within one plan search: whether a node subset induces a
// connected subgraph, and the list of valid splits of a subset. The DP
// plan enumeration and the implementing-tree enumerator both probe the
// same halves from many different supersets — a set like {R,S} is
// tested once per superset that might split it off — so one memo table
// per optimization turns the repeated O(edges) flood fills into map
// lookups. A SplitMemo is bound to one graph and is not safe for
// concurrent use (the optimizer creates one per optimizeGraph call).
type SplitMemo struct {
	g         *graph.Graph
	connected map[graph.NodeSet]bool
	splits    map[graph.NodeSet][]Split
	hits      int64
}

// NewSplitMemo returns an empty memo over g.
func NewSplitMemo(g *graph.Graph) *SplitMemo {
	return &SplitMemo{
		g:         g,
		connected: make(map[graph.NodeSet]bool),
		splits:    make(map[graph.NodeSet][]Split),
	}
}

// Connected is a memoized graph.ConnectedSet.
func (m *SplitMemo) Connected(s graph.NodeSet) bool {
	if v, ok := m.connected[s]; ok {
		m.hits++
		return v
	}
	v := m.g.ConnectedSet(s)
	m.connected[s] = v
	return v
}

// Splits is a memoized ValidSplits. Callers must not modify the
// returned slice.
func (m *SplitMemo) Splits(s graph.NodeSet) []Split {
	if v, ok := m.splits[s]; ok {
		m.hits++
		return v
	}
	v := validSplits(m.g, s, m.Connected)
	m.splits[s] = v
	return v
}

// Hits returns how many lookups were answered from the memo; the
// optimizer surfaces it in Trace.MemoHits.
func (m *SplitMemo) Hits() int64 { return m.hits }
