package expr

import (
	"fmt"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
)

// Implementing-tree enumeration. An IT of a graph G corresponds to a
// recursive partition of G's nodes into connected halves, where each
// split's cut edges form a single operator: a set of join edges collapses
// into one join whose predicate is their conjunction, and a single
// outerjoin edge (with no join edges beside it) becomes an outerjoin
// directed along the edge. Splits whose cut mixes kinds or contains more
// than one outerjoin edge are not expressible as one operator, so they
// yield no ITs — exactly the "connectivity-preserving parenthesizations"
// of §1.3.

// EnumerateITs returns every implementing tree of g. With moduloReversal
// true, only one representative per reversal class is produced: joins put
// the side holding g's lowest-index node on the left, and outerjoins put
// the preserved side on the left. With moduloReversal false both
// orientations of every operator are produced, so the count multiplies by
// 2^(operators).
//
// The graph must be connected and non-empty. Enumeration is exponential;
// it is intended for graphs of at most ~10 nodes (use CountITs to size a
// graph first).
func EnumerateITs(g *graph.Graph, moduloReversal bool) ([]*Node, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("expr: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("expr: graph is not connected")
	}
	e := &enumerator{g: g, modulo: moduloReversal, sm: NewSplitMemo(g), memo: map[graph.NodeSet][]*Node{}}
	return e.trees(g.AllNodes()), nil
}

// CountITs returns the number of implementing trees of g without
// materializing them.
func CountITs(g *graph.Graph, moduloReversal bool) (int64, error) {
	if g.NumNodes() == 0 {
		return 0, fmt.Errorf("expr: empty graph")
	}
	if !g.Connected() {
		return 0, fmt.Errorf("expr: graph is not connected")
	}
	e := &enumerator{g: g, modulo: moduloReversal, sm: NewSplitMemo(g), counts: map[graph.NodeSet]int64{}}
	return e.count(g.AllNodes()), nil
}

type enumerator struct {
	g      *graph.Graph
	modulo bool
	sm     *SplitMemo
	memo   map[graph.NodeSet][]*Node
	counts map[graph.NodeSet]int64
}

// Split is a valid binary partition of a node set: the cut edges collapse
// into one operator. For Op == LeftOuter, S1Preserved tells which half is
// the preserved side.
type Split struct {
	S1, S2      graph.NodeSet
	Op          Op // Join or LeftOuter
	Pred        predicate.Predicate
	S1Preserved bool
}

// ValidSplits enumerates the valid binary partitions of the connected
// node set s of g — the split rule that defines implementing trees. Each
// unordered partition appears exactly once (S1 holds the lowest-index
// node). The optimizer's plan enumeration and the IT enumerator share
// this rule.
func ValidSplits(g *graph.Graph, s graph.NodeSet) []Split {
	return validSplits(g, s, g.ConnectedSet)
}

// validSplits is ValidSplits with the connectivity test abstracted so a
// SplitMemo can substitute its memoized version: both halves of every
// candidate submask are probed, and the same half recurs across many
// supersets, so caching the flood fill pays across one optimization.
func validSplits(g *graph.Graph, s graph.NodeSet, connected func(graph.NodeSet) bool) []Split {
	var out []Split
	low := lowestBit(s)
	// Iterate proper submasks of s that contain the lowest bit, so each
	// unordered partition {s1, s2} is visited exactly once.
	for sub := (s - 1) & s; sub != 0; sub = (sub - 1) & s {
		if !sub.Has(low) {
			continue
		}
		s1, s2 := sub, s&^sub
		if !connected(s1) || !connected(s2) {
			continue
		}
		cut := g.CutEdges(s1, s2)
		if len(cut) == 0 {
			continue // would be a Cartesian product: excluded from ITs
		}
		directed := 0
		for _, edge := range cut {
			if edge.Kind != graph.JoinEdge {
				directed++
			}
		}
		switch {
		case directed == 0:
			preds := make([]predicate.Predicate, len(cut))
			for i, edge := range cut {
				preds[i] = edge.Pred
			}
			out = append(out, Split{S1: s1, S2: s2, Op: Join, Pred: predicate.NewAnd(preds...), S1Preserved: true})
		case directed == 1 && len(cut) == 1:
			edge := cut[0]
			op := LeftOuter
			if edge.Kind == graph.SemiEdge {
				op = Semijoin
			}
			out = append(out, Split{S1: s1, S2: s2, Op: op, Pred: edge.Pred,
				S1Preserved: s1.Has(g.IndexOf(edge.U))})
		default:
			// Mixed cut or several directed edges: no single operator.
		}
	}
	return out
}

// splits adapts the memoized split enumeration to the enumerator's
// callback style.
func (e *enumerator) splits(s graph.NodeSet, f func(s1, s2 graph.NodeSet, op Op, pred predicate.Predicate, s1Preserved bool)) {
	for _, sp := range e.sm.Splits(s) {
		f(sp.S1, sp.S2, sp.Op, sp.Pred, sp.S1Preserved)
	}
}

func (e *enumerator) trees(s graph.NodeSet) []*Node {
	if got, ok := e.memo[s]; ok {
		return got
	}
	if s.Count() == 1 {
		leaf := []*Node{NewLeaf(e.g.NamesOf(s)[0])}
		e.memo[s] = leaf
		return leaf
	}
	var out []*Node
	e.splits(s, func(s1, s2 graph.NodeSet, op Op, pred predicate.Predicate, s1Preserved bool) {
		t1 := e.trees(s1)
		t2 := e.trees(s2)
		mkDirected := func(pres, cons *Node) (canonical, reversed *Node) {
			if op == Semijoin {
				return NewSemi(pres, cons, pred), &Node{Op: RightSemi, Left: cons, Right: pres, Pred: pred}
			}
			return NewOuter(pres, cons, pred), NewRightOuter(cons, pres, pred)
		}
		for _, l := range t1 {
			for _, r := range t2 {
				switch {
				case op == Join && e.modulo:
					out = append(out, NewJoin(l, r, pred))
				case op == Join:
					out = append(out, NewJoin(l, r, pred), NewJoin(r, l, pred))
				default:
					pres, cons := l, r
					if !s1Preserved {
						pres, cons = r, l
					}
					canonical, reversed := mkDirected(pres, cons)
					if e.modulo {
						// Canonical form: preserved side on the left.
						out = append(out, canonical)
					} else {
						out = append(out, canonical, reversed)
					}
				}
			}
		}
	})
	e.memo[s] = out
	return out
}

func (e *enumerator) count(s graph.NodeSet) int64 {
	if got, ok := e.counts[s]; ok {
		return got
	}
	if s.Count() == 1 {
		e.counts[s] = 1
		return 1
	}
	var total int64
	e.splits(s, func(s1, s2 graph.NodeSet, op Op, pred predicate.Predicate, s1Preserved bool) {
		prod := e.count(s1) * e.count(s2)
		if !e.modulo {
			prod *= 2
		}
		total += prod
	})
	e.counts[s] = total
	return total
}

func lowestBit(s graph.NodeSet) int {
	i := 0
	for !s.Has(i) {
		i++
	}
	return i
}
