package expr

import (
	"testing"

	"freejoin/internal/graph"
)

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n-1; i++ {
		u := string(rune('A' + i))
		v := string(rune('A' + i + 1))
		if err := g.AddJoinEdge(u, v, eqp(u, v)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func starGraph(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < leaves; i++ {
		v := string(rune('B' + i))
		if err := g.AddJoinEdge("A", v, eqp("A", v)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestEnumerateChainCounts(t *testing.T) {
	// Join chains: modulo-reversal counts are the Catalan numbers
	// C(n-1) = 1, 2, 5, 14; full counts multiply by 2^(n-1).
	wantModulo := map[int]int{2: 1, 3: 2, 4: 5, 5: 14}
	for n, want := range wantModulo {
		g := chainGraph(t, n)
		its, err := EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(its) != want {
			t.Errorf("chain %d: %d ITs modulo reversal, want %d", n, len(its), want)
		}
		full, err := EnumerateITs(g, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != want*(1<<(n-1)) {
			t.Errorf("chain %d: %d full ITs, want %d", n, len(full), want*(1<<(n-1)))
		}
		// Counting agrees with materialization.
		c, err := CountITs(g, true)
		if err != nil || c != int64(want) {
			t.Errorf("chain %d: CountITs modulo = %d, %v", n, c, err)
		}
		cf, err := CountITs(g, false)
		if err != nil || cf != int64(len(full)) {
			t.Errorf("chain %d: CountITs full = %d, %v", n, cf, err)
		}
	}
}

func TestEnumerateStarCounts(t *testing.T) {
	// Star with k leaves: k! trees modulo reversal (leaves joined to the
	// center in any order).
	fact := func(k int) int {
		f := 1
		for i := 2; i <= k; i++ {
			f *= i
		}
		return f
	}
	for k := 1; k <= 4; k++ {
		g := starGraph(t, k)
		its, err := EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(its) != fact(k) {
			t.Errorf("star %d: %d ITs, want %d", k, len(its), fact(k))
		}
	}
}

func TestEnumerateSingleNode(t *testing.T) {
	g := graph.New()
	g.MustAddNode("R")
	its, err := EnumerateITs(g, true)
	if err != nil || len(its) != 1 || its[0].Op != Leaf {
		t.Fatalf("single node: %v, %v", its, err)
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := EnumerateITs(graph.New(), true); err == nil {
		t.Error("empty graph must fail")
	}
	if _, err := CountITs(graph.New(), true); err == nil {
		t.Error("empty graph count must fail")
	}
	g := graph.New()
	g.MustAddNode("R")
	g.MustAddNode("S")
	if _, err := EnumerateITs(g, true); err == nil {
		t.Error("disconnected graph must fail")
	}
	if _, err := CountITs(g, true); err == nil {
		t.Error("disconnected graph count must fail")
	}
}

func TestEnumerateAllImplementGraph(t *testing.T) {
	// Every enumerated tree must implement the graph it came from —
	// including graphs with outerjoins and cycles.
	graphs := []*graph.Graph{}
	// Example 2 graph: A -> B - C.
	g1 := graph.New()
	if err := g1.AddOuterEdge("A", "B", eqp("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddJoinEdge("B", "C", eqp("B", "C")); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g1)
	// Nice graph: join core + outer tree.
	g2 := graph.New()
	if err := g2.AddJoinEdge("A", "B", eqp("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddOuterEdge("B", "C", eqp("B", "C")); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddOuterEdge("C", "D", eqp("C", "D")); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g2)
	// Join cycle.
	g3 := graph.New()
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "A"}} {
		if err := g3.AddJoinEdge(e[0], e[1], eqp(e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	graphs = append(graphs, g3)

	for gi, g := range graphs {
		for _, modulo := range []bool{true, false} {
			its, err := EnumerateITs(g, modulo)
			if err != nil {
				t.Fatal(err)
			}
			if len(its) == 0 {
				t.Fatalf("graph %d: no ITs", gi)
			}
			seen := map[string]bool{}
			for _, it := range its {
				if !Implements(it, g) {
					itg, gerr := GraphOf(it)
					t.Fatalf("graph %d: IT %v does not implement its graph (got %v, err %v, want %v)",
						gi, it.StringWithPreds(), itg, gerr, g)
				}
				key := it.StringWithPreds()
				if seen[key] {
					t.Errorf("graph %d: duplicate IT %s", gi, key)
				}
				seen[key] = true
			}
		}
	}
}

func TestEnumerateExample2Graph(t *testing.T) {
	// A -> B - C has exactly two ITs modulo reversal: A -> (B - C) and
	// (A -> B) - C.
	g := graph.New()
	if err := g.AddOuterEdge("A", "B", eqp("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddJoinEdge("B", "C", eqp("B", "C")); err != nil {
		t.Fatal(err)
	}
	its, err := EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) != 2 {
		t.Fatalf("example 2 graph: %d ITs, want 2: %v", len(its), its)
	}
	shapes := map[string]bool{}
	for _, it := range its {
		shapes[it.String()] = true
	}
	if !shapes["(A -> (B - C))"] || !shapes["((A -> B) - C)"] {
		t.Errorf("shapes = %v", shapes)
	}
}

func TestEnumerateMixedCutExcluded(t *testing.T) {
	// Graph A - B with A -> C: the partition {A} | {B, C} has a mixed cut
	// and must not produce an operator; only 2 ITs exist modulo reversal.
	g := graph.New()
	if err := g.AddJoinEdge("A", "B", eqp("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOuterEdge("A", "C", eqp("A", "C")); err != nil {
		t.Fatal(err)
	}
	its, err := EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) != 2 {
		t.Fatalf("%d ITs, want 2: %v", len(its), its)
	}
}

func TestEnumerateOuterOrientation(t *testing.T) {
	// Graph R -> S. Canonical (modulo) tree is (R -> S) even though S is
	// not the lowest node; full enumeration adds (S <- R).
	g := graph.New()
	if err := g.AddOuterEdge("R", "S", eqp("R", "S")); err != nil {
		t.Fatal(err)
	}
	its, err := EnumerateITs(g, true)
	if err != nil || len(its) != 1 || its[0].String() != "(R -> S)" {
		t.Fatalf("canonical outer: %v %v", its, err)
	}
	full, err := EnumerateITs(g, false)
	if err != nil || len(full) != 2 {
		t.Fatalf("full outer: %v %v", full, err)
	}
	shapes := map[string]bool{}
	for _, it := range full {
		shapes[it.String()] = true
	}
	if !shapes["(R -> S)"] || !shapes["(S <- R)"] {
		t.Errorf("full shapes = %v", shapes)
	}
}

// TestEnumerateMatchesClosure ties enumeration to the BT machinery on a
// nice graph with an outerjoin: the BT closure of any IT equals the full
// IT set (Lemma 3 on a fixed instance; the randomized version lives in
// package core's tests).
func TestEnumerateMatchesClosure(t *testing.T) {
	g := graph.New()
	if err := g.AddJoinEdge("A", "B", eqp("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOuterEdge("B", "C", eqp("B", "C")); err != nil {
		t.Fatal(err)
	}
	all, err := EnumerateITs(g, false)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Closure(all[0], 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != len(all) {
		t.Fatalf("closure %d vs enumeration %d", len(cl), len(all))
	}
	for _, it := range all {
		if _, ok := cl[it.StringWithPreds()]; !ok {
			t.Errorf("missing from closure: %v", it.StringWithPreds())
		}
	}
}
