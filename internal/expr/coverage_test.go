package expr

import (
	"strings"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Local coverage for pieces primarily exercised from package core.

func TestOpSymbolsAndFullOuter(t *testing.T) {
	fo := NewFullOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if fo.String() != "(R <-> S)" {
		t.Errorf("full outer renders %q", fo.String())
	}
	rev, ok := reverse(fo)
	if !ok || rev.Op != FullOuter || rev.Left.Rel != "S" {
		t.Errorf("full outer reversal: %v", rev)
	}
	semi := NewSemi(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if semi.String() != "(R |x S)" {
		t.Errorf("semijoin renders %q", semi.String())
	}
	srev, ok := reverse(semi)
	if !ok || srev.Op != RightSemi || srev.String() != "(S x| R)" {
		t.Errorf("semijoin reversal: %v", srev)
	}
	back, ok := reverse(srev)
	if !ok || !back.Equal(semi) {
		t.Error("semijoin reversal must be an involution")
	}
	goj := NewGOJ(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"), nil)
	if !strings.Contains(goj.StringWithPreds(), "goj") {
		t.Errorf("goj renders %q", goj.StringWithPreds())
	}
	if _, ok := reverse(goj); ok {
		t.Error("GOJ has no symmetric form")
	}
	if (&Node{Op: Op(77), Left: NewLeaf("R"), Right: NewLeaf("S")}).opSymbol() != "?" {
		t.Error("unknown op symbol")
	}
}

func TestEqualNilHandling(t *testing.T) {
	var a *Node
	if !a.Equal(nil) {
		t.Error("nil equals nil")
	}
	if a.Equal(NewLeaf("R")) || NewLeaf("R").Equal(nil) {
		t.Error("nil never equals a node")
	}
	if NewLeaf("R").render(false) == "<nil>" {
		t.Error("render of leaf broken")
	}
	var n *Node
	if n.render(false) != "<nil>" {
		t.Error("nil render")
	}
}

func TestVisibilityLocal(t *testing.T) {
	// Semijoin output hides the consumed side.
	q := NewSemi(NewLeaf("A"), NewLeaf("B"), eqp("A", "B"))
	vis := q.VisibleRels()
	if !vis["A"] || vis["B"] {
		t.Errorf("visible = %v", vis)
	}
	// RightSemi hides the left.
	rq := &Node{Op: RightSemi, Left: NewLeaf("A"), Right: NewLeaf("B"), Pred: eqp("A", "B")}
	vis = rq.VisibleRels()
	if vis["A"] || !vis["B"] {
		t.Errorf("rightsemi visible = %v", vis)
	}
	// Projection and restriction pass visibility through.
	p := NewProject(NewRestrict(q, eqpLocal("A")), nil, false)
	if !p.VisibleRels()["A"] {
		t.Error("project/restrict visibility")
	}
	// CheckVisibility on valid / invalid restriction targets.
	if err := CheckVisibility(NewRestrict(q, eqpLocal("A"))); err != nil {
		t.Errorf("restrict over visible rel: %v", err)
	}
	if err := CheckVisibility(NewRestrict(q, eqpLocal("B"))); err == nil {
		t.Error("restrict over consumed rel must fail")
	}
	// Left-subtree violations propagate.
	bad := NewJoin(
		NewRestrict(q, eqpLocal("B")),
		NewLeaf("C"), eqp("A", "C"))
	if err := CheckVisibility(bad); err == nil {
		t.Error("nested violation must propagate")
	}
	// Right-subtree violations propagate.
	bad2 := NewJoin(NewLeaf("C"),
		NewRestrict(q, eqpLocal("B")), eqp("A", "C"))
	if err := CheckVisibility(bad2); err == nil {
		t.Error("right nested violation must propagate")
	}
}

// eqpLocal builds the single-relation predicate rel.a = 1.
func eqpLocal(rel string) predicate.Predicate {
	return predicate.EqConst(relation.A(rel, "a"), relation.Int(1))
}
