package expr

import (
	"fmt"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
)

// GraphOf derives the query graph of a Join/Outerjoin expression — the
// paper's graph(Q). It returns an error whenever the paper deems the
// graph undefined:
//
//   - a relation is used more than once,
//   - a join-predicate conjunct does not reference exactly two ground
//     relations, one in each operand subtree,
//   - an outerjoin predicate does not reference exactly two ground
//     relations, one per side, or
//   - the expression contains operators outside {join, outerjoin} (a
//     restriction, projection, antijoin, semijoin or GOJ has no edge kind
//     in the paper's graphs).
//
// Parallel join edges between the same pair of relations are collapsed
// into one, conjoining their predicate conjuncts.
func GraphOf(q *Node) (*graph.Graph, error) {
	if _, err := q.RelationSet(); err != nil {
		return nil, err
	}
	g := graph.New()
	if err := addToGraph(g, q); err != nil {
		return nil, err
	}
	return g, nil
}

func addToGraph(g *graph.Graph, n *Node) error {
	switch n.Op {
	case Leaf:
		return g.AddNode(n.Rel)
	case Join, LeftOuter, RightOuter, Semijoin, RightSemi:
		// handled below; semijoin edges are the §6.3 extension
	default:
		return fmt.Errorf("expr: graph undefined for operator %s", n.Op)
	}
	if err := addToGraph(g, n.Left); err != nil {
		return err
	}
	if err := addToGraph(g, n.Right); err != nil {
		return err
	}
	leftRels := setOf(n.Left.Relations())
	rightRels := setOf(n.Right.Relations())

	switch n.Op {
	case Join:
		for _, conj := range predicate.Conjuncts(n.Pred) {
			u, v, err := endpointRels(conj, leftRels, rightRels)
			if err != nil {
				return fmt.Errorf("expr: join conjunct %v: %w", conj, err)
			}
			if err := g.AddJoinEdge(u, v, conj); err != nil {
				return err
			}
		}
	case LeftOuter, RightOuter:
		u, v, err := endpointRels(n.Pred, leftRels, rightRels)
		if err != nil {
			return fmt.Errorf("expr: outerjoin predicate %v: %w", n.Pred, err)
		}
		if n.Op == RightOuter {
			// Preserved side is the right operand; v (the right-side
			// relation) preserves, u is null-supplied.
			u, v = v, u
		}
		return g.AddOuterEdge(u, v, n.Pred)
	case Semijoin, RightSemi:
		u, v, err := endpointRels(n.Pred, leftRels, rightRels)
		if err != nil {
			return fmt.Errorf("expr: semijoin predicate %v: %w", n.Pred, err)
		}
		if n.Op == RightSemi {
			u, v = v, u // output side is the right operand
		}
		return g.AddSemiEdge(u, v, n.Pred)
	}
	return nil
}

// endpointRels validates that p references exactly two ground relations,
// one per side, returning (leftRel, rightRel).
func endpointRels(p predicate.Predicate, leftRels, rightRels map[string]bool) (string, string, error) {
	rels := predicate.Rels(p)
	if len(rels) != 2 {
		return "", "", fmt.Errorf("references %d ground relations, want 2", len(rels))
	}
	a, b := rels[0], rels[1]
	switch {
	case leftRels[a] && rightRels[b]:
		return a, b, nil
	case leftRels[b] && rightRels[a]:
		return b, a, nil
	default:
		return "", "", fmt.Errorf("must reference one relation per operand (got %s, %s)", a, b)
	}
}

func setOf(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Implements reports whether q is an implementing tree of g, i.e.
// graph(q) is defined and equals g.
func Implements(q *Node, g *graph.Graph) bool {
	qg, err := GraphOf(q)
	if err != nil {
		return false
	}
	return qg.Equal(g)
}
