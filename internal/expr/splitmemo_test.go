package expr

import (
	"math/rand"
	"reflect"
	"testing"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// The memoized split enumeration must agree with the direct one on
// every connected subset, and repeated queries must be served from the
// memo.
func TestSplitMemoEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	names := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 50; trial++ {
		g := graph.New()
		for _, n := range names {
			g.MustAddNode(n)
		}
		// Random spanning tree plus a few extra join edges, some
		// promoted to outerjoins.
		for i := 1; i < len(names); i++ {
			u, v := names[rnd.Intn(i)], names[i]
			p := predicate.Eq(relation.Attr{Rel: u, Name: "a"}, relation.Attr{Rel: v, Name: "a"})
			var err error
			if rnd.Intn(3) == 0 {
				err = g.AddOuterEdge(u, v, p)
			} else {
				err = g.AddJoinEdge(u, v, p)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 2; k++ {
			u, v := names[rnd.Intn(len(names))], names[rnd.Intn(len(names))]
			if u == v {
				continue
			}
			// Ignore errors: parallel-to-outerjoin edges are rejected.
			g.AddJoinEdge(u, v, predicate.Eq(relation.Attr{Rel: u, Name: "b"}, relation.Attr{Rel: v, Name: "b"}))
		}

		sm := NewSplitMemo(g)
		all := g.AllNodes()
		for s := graph.NodeSet(1); s <= all; s++ {
			if s&all != s || !g.ConnectedSet(s) {
				continue
			}
			want := ValidSplits(g, s)
			got := sm.Splits(s)
			if !reflect.DeepEqual(splitKeys(want), splitKeys(got)) {
				t.Fatalf("trial %d set %b: memoized splits differ\nwant %v\ngot  %v", trial, s, want, got)
			}
			if sm.Connected(s) != g.ConnectedSet(s) {
				t.Fatalf("trial %d set %b: memoized connectivity differs", trial, s)
			}
		}
		if sm.Hits() == 0 {
			t.Fatalf("trial %d: memo never hit across %d subsets", trial, all.Count())
		}
		// Second sweep: everything is memoized now.
		before := sm.Hits()
		for s := graph.NodeSet(1); s <= all; s++ {
			if s&all != s || !g.ConnectedSet(s) {
				continue
			}
			sm.Splits(s)
		}
		if sm.Hits() <= before {
			t.Fatalf("trial %d: second sweep did not hit the memo", trial)
		}
	}
}

// splitKeys projects splits onto comparable structure (predicates are
// compared by rendering).
func splitKeys(sps []Split) []string {
	out := make([]string, len(sps))
	for i, sp := range sps {
		out[i] = splitKey(sp)
	}
	return out
}

func splitKey(sp Split) string {
	pred := ""
	if sp.Pred != nil {
		pred = sp.Pred.String()
	}
	return string(rune(sp.Op)) + ":" + pred +
		":" + nodeSetBits(sp.S1) + ":" + nodeSetBits(sp.S2) +
		":" + map[bool]string{true: "p1", false: "p2"}[sp.S1Preserved]
}

func nodeSetBits(s graph.NodeSet) string {
	b := make([]byte, 0, 8)
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			b = append(b, byte('0'+i))
		}
	}
	return string(b)
}
