package expr

import (
	"math/rand"
	"testing"
)

func TestTreeConditionFixedCases(t *testing.T) {
	cases := []struct {
		name string
		q    *Node
		want bool
	}{
		{"join chain", NewJoin(NewJoin(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), NewLeaf("C"), eqp("B", "C")), true},
		{"outer chain", NewOuter(NewOuter(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), NewLeaf("C"), eqp("B", "C")), true},
		{"join then outer", NewOuter(NewJoin(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), NewLeaf("C"), eqp("B", "C")), true},
		{"outer onto join (Example 2)", NewOuter(NewLeaf("A"),
			NewJoin(NewLeaf("B"), NewLeaf("C"), eqp("B", "C")), eqp("A", "B")), false},
		{"join over null-supplied rel", NewJoin(
			NewOuter(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), NewLeaf("C"), eqp("B", "C")), false},
		{"join over preserved rel is fine", NewJoin(
			NewOuter(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), NewLeaf("C"), eqp("A", "C")), true},
		{"double null supply (X -> Y <- Z)", NewRightOuter(
			NewOuter(NewLeaf("X"), NewLeaf("Y"), eqp("X", "Y")), NewLeaf("Z"), eqp("Z", "Y")), false},
		{"right outer chain", NewRightOuter(NewLeaf("B"), NewLeaf("A"), eqp("A", "B")), true},
		{"antijoin rejected", NewAnti(NewLeaf("A"), NewLeaf("B"), eqp("A", "B")), false},
	}
	for _, tc := range cases {
		got, reason := TreeCondition(tc.q)
		if got != tc.want {
			t.Errorf("%s: TreeCondition(%s) = %v (%s), want %v", tc.name, tc.q, got, reason, tc.want)
		}
	}
}

// randomWellFormedTree builds a random join/outerjoin tree over distinct
// relations whose operator predicates each reference one relation per
// side — so graph(q) is always defined.
func randomWellFormedTree(rnd *rand.Rand, rels []string) *Node {
	if len(rels) == 1 {
		return NewLeaf(rels[0])
	}
	k := 1 + rnd.Intn(len(rels)-1)
	left := randomWellFormedTree(rnd, rels[:k])
	right := randomWellFormedTree(rnd, rels[k:])
	lrel := rels[rnd.Intn(k)]
	rrel := rels[k:][rnd.Intn(len(rels)-k)]
	p := eqp(lrel, rrel)
	switch rnd.Intn(3) {
	case 0:
		return NewJoin(left, right, p)
	case 1:
		return NewOuter(left, right, p)
	default:
		return NewRightOuter(left, right, p)
	}
}

// TestTreeConditionMatchesGraphNiceness (E18): the §6.3 conjecture — the
// tree-level conditions coincide with graph niceness on every well-formed
// tree.
func TestTreeConditionMatchesGraphNiceness(t *testing.T) {
	rnd := rand.New(rand.NewSource(81))
	names := []string{"A", "B", "C", "D", "E", "F"}
	agreeTrue, agreeFalse := 0, 0
	for trial := 0; trial < 4000; trial++ {
		n := 2 + rnd.Intn(5)
		q := randomWellFormedTree(rnd, names[:n])
		g, err := GraphOf(q)
		if err != nil {
			t.Fatalf("trial %d: graph undefined for generated tree %s: %v", trial, q.StringWithPreds(), err)
		}
		niceness, niceReason := g.IsNice()
		treeOK, treeReason := TreeCondition(q)
		if niceness != treeOK {
			t.Fatalf("trial %d: disagreement on %s\n graph: %v (%s)\n tree:  %v (%s)\n%v",
				trial, q.StringWithPreds(), niceness, niceReason, treeOK, treeReason, g)
		}
		if niceness {
			agreeTrue++
		} else {
			agreeFalse++
		}
	}
	if agreeTrue == 0 || agreeFalse == 0 {
		t.Errorf("generator must exercise both outcomes: %d/%d", agreeTrue, agreeFalse)
	}
}
