package expr

import (
	"fmt"

	"freejoin/internal/predicate"
)

// BTKind distinguishes the two basic transforms of §3.2.
type BTKind uint8

// Basic transform kinds.
const (
	Reversal BTKind = iota
	Reassociation
)

// String returns the transform-kind name.
func (k BTKind) String() string {
	if k == Reassociation {
		return "reassociation"
	}
	return "reversal"
}

// BT is one applicable basic transform of a tree, together with the tree
// it produces. Path addresses the affected node from the root (0 = left
// child, 1 = right child).
type BT struct {
	Kind   BTKind
	Path   []int
	Result *Node
}

// String describes the transform.
func (b BT) String() string {
	return fmt.Sprintf("%s at %v => %s", b.Kind, b.Path, b.Result)
}

// reverse returns the reversal of a join-like node: children exchanged
// and the operator replaced by its symmetric form (— stays —, → becomes
// ←, ▷ becomes ◁ and vice versa).
func reverse(n *Node) (*Node, bool) {
	var sym Op
	switch n.Op {
	case Join:
		sym = Join
	case LeftOuter:
		sym = RightOuter
	case RightOuter:
		sym = LeftOuter
	case FullOuter:
		sym = FullOuter
	case LeftAnti:
		sym = RightAnti
	case RightAnti:
		sym = LeftAnti
	case Semijoin:
		sym = RightSemi
	case RightSemi:
		sym = Semijoin
	default:
		return nil, false
	}
	return &Node{Op: sym, Left: n.Right, Right: n.Left, Pred: n.Pred}, true
}

// reassociate attempts the reassociation BT [Q1 ⊙1 Q2 ⊙2 Q3] at n, which
// must have the shape ((Q1 ⊙1 Q2) ⊙2 Q3); it yields (Q1 ⊙1 (Q2 ⊙2 Q3)).
// Applicability per §3.2:
//
//   - the predicate of ⊙2 must reference some relation in Q2 (otherwise
//     the new inner operator would join Q2 and Q3 without support), and
//   - any conjunct of ⊙2 referencing Q1 must be moved to ⊙1; moving a
//     conjunct is only legal when both operators are regular joins.
//
// Only join and outerjoin operators participate (the IT operator set).
func reassociate(n *Node) (*Node, bool) {
	if !isJoinOrOuter(n.Op) {
		return nil, false
	}
	inner := n.Left
	if inner == nil || !isJoinOrOuter(inner.Op) {
		return nil, false
	}
	q1, q2, q3 := inner.Left, inner.Right, n.Right
	q1Rels := setOf(q1.Relations())
	q2Rels := setOf(q2.Relations())

	var stay, move []predicate.Predicate
	for _, conj := range predicate.Conjuncts(n.Pred) {
		refsQ1, refsQ2 := false, false
		for _, rel := range predicate.Rels(conj) {
			if q1Rels[rel] {
				refsQ1 = true
			}
			if q2Rels[rel] {
				refsQ2 = true
			}
		}
		switch {
		case refsQ1 && !refsQ2:
			move = append(move, conj)
		case refsQ2 && !refsQ1:
			stay = append(stay, conj)
		default:
			// A conjunct referencing both Q1 and Q2 (or neither) cannot be
			// placed by the reassociation.
			return nil, false
		}
	}
	if len(stay) == 0 {
		return nil, false // ⊙2's predicate must reference Q2
	}
	if len(move) > 0 && (n.Op != Join || inner.Op != Join) {
		return nil, false // conjunct movement requires two regular joins
	}
	newInner := &Node{Op: n.Op, Left: q2, Right: q3, Pred: predicate.NewAnd(stay...)}
	newRootPred := inner.Pred
	if len(move) > 0 {
		newRootPred = predicate.NewAnd(append([]predicate.Predicate{inner.Pred}, move...)...)
	}
	return &Node{Op: inner.Op, Left: q1, Right: newInner, Pred: newRootPred}, true
}

func isJoinOrOuter(op Op) bool {
	return op == Join || op == LeftOuter || op == RightOuter
}

// ApplicableBTs enumerates every basic transform applicable anywhere in
// the tree, returning the transformed trees (unchanged subtrees are
// shared).
func ApplicableBTs(q *Node) []BT {
	var out []BT
	collectBTs(q, nil, func(path []int, replace func(*Node) *Node) {
		node := nodeAt(q, path)
		if rev, ok := reverse(node); ok {
			out = append(out, BT{Kind: Reversal, Path: append([]int(nil), path...), Result: replace(rev)})
		}
		if re, ok := reassociate(node); ok {
			out = append(out, BT{Kind: Reassociation, Path: append([]int(nil), path...), Result: replace(re)})
		}
	})
	return out
}

// collectBTs walks internal nodes, handing each visitor a path and a
// function that rebuilds the whole tree with the node at that path
// replaced.
func collectBTs(root *Node, path []int, visit func(path []int, replace func(*Node) *Node)) {
	node := nodeAt(root, path)
	if node == nil || node.Op == Leaf {
		return
	}
	visit(path, func(repl *Node) *Node { return replaceAt(root, path, repl) })
	// Copy the path per branch: append on a shared backing array would let
	// the two recursive calls clobber each other's suffix.
	if node.Left != nil {
		collectBTs(root, append(append([]int(nil), path...), 0), visit)
	}
	if node.Right != nil {
		collectBTs(root, append(append([]int(nil), path...), 1), visit)
	}
}

func nodeAt(root *Node, path []int) *Node {
	n := root
	for _, step := range path {
		if n == nil {
			return nil
		}
		if step == 0 {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

func replaceAt(root *Node, path []int, repl *Node) *Node {
	if len(path) == 0 {
		return repl
	}
	cp := *root
	if path[0] == 0 {
		cp.Left = replaceAt(root.Left, path[1:], repl)
	} else {
		cp.Right = replaceAt(root.Right, path[1:], repl)
	}
	return &cp
}

// Closure computes the set of trees reachable from q by sequences of
// basic transforms (BFS over the BT graph). Trees are keyed by their
// canonical rendering. limit caps the number of distinct trees explored;
// exceeding it returns an error (guard against combinatorial blowup).
func Closure(q *Node, limit int) (map[string]*Node, error) {
	seen := map[string]*Node{q.StringWithPreds(): q}
	frontier := []*Node{q}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, bt := range ApplicableBTs(cur) {
			key := bt.Result.StringWithPreds()
			if _, ok := seen[key]; ok {
				continue
			}
			if len(seen) >= limit {
				return nil, fmt.Errorf("expr: BT closure exceeds limit %d", limit)
			}
			seen[key] = bt.Result
			frontier = append(frontier, bt.Result)
		}
	}
	return seen, nil
}

// BTPath searches for a sequence of basic transforms mapping q to target
// (Lemma 3 constructively, via BFS). It returns the intermediate trees
// from q to target inclusive, or an error if the target is unreachable
// within limit distinct trees.
func BTPath(q, target *Node, limit int) ([]*Node, error) {
	targetKey := target.StringWithPreds()
	type entry struct {
		node *Node
		prev string
	}
	seen := map[string]entry{q.StringWithPreds(): {node: q}}
	frontier := []*Node{q}
	found := q.StringWithPreds() == targetKey
	for len(frontier) > 0 && !found {
		cur := frontier[0]
		frontier = frontier[1:]
		curKey := cur.StringWithPreds()
		for _, bt := range ApplicableBTs(cur) {
			key := bt.Result.StringWithPreds()
			if _, ok := seen[key]; ok {
				continue
			}
			if len(seen) >= limit {
				return nil, fmt.Errorf("expr: BT path search exceeds limit %d", limit)
			}
			seen[key] = entry{node: bt.Result, prev: curKey}
			if key == targetKey {
				found = true
				break
			}
			frontier = append(frontier, bt.Result)
		}
	}
	if !found {
		return nil, fmt.Errorf("expr: no BT path from %s to %s", q, target)
	}
	// Reconstruct the path backwards.
	var path []*Node
	for key := targetKey; ; {
		e := seen[key]
		path = append([]*Node{e.node}, path...)
		if e.prev == "" {
			break
		}
		key = e.prev
	}
	return path, nil
}
