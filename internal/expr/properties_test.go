package expr

// Property-based tests over trees and transforms, complementing the
// theorem tests in package core.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// treeFromSeed deterministically expands a seed into a random well-formed
// join/outerjoin tree over 2..6 relations.
func treeFromSeed(seed int64) *Node {
	rnd := rand.New(rand.NewSource(seed))
	names := []string{"A", "B", "C", "D", "E", "F"}
	n := 2 + rnd.Intn(5)
	return buildSeedTree(rnd, names[:n])
}

func buildSeedTree(rnd *rand.Rand, rels []string) *Node {
	if len(rels) == 1 {
		return NewLeaf(rels[0])
	}
	k := 1 + rnd.Intn(len(rels)-1)
	left := buildSeedTree(rnd, rels[:k])
	right := buildSeedTree(rnd, rels[k:])
	p := eqp(rels[rnd.Intn(k)], rels[k:][rnd.Intn(len(rels)-k)])
	switch rnd.Intn(3) {
	case 0:
		return NewJoin(left, right, p)
	case 1:
		return NewOuter(left, right, p)
	default:
		return NewRightOuter(left, right, p)
	}
}

func qcheck(t *testing.T, f any) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Every applicable BT preserves the query graph (the §3.2 observation),
// on arbitrary random trees — not just nice ones.
func TestPropBTsPreserveGraph(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		g, err := GraphOf(q)
		if err != nil {
			return false
		}
		for _, bt := range ApplicableBTs(q) {
			if !Implements(bt.Result, g) {
				return false
			}
		}
		return true
	})
}

// Reversal at the root is an involution.
func TestPropReversalInvolution(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		rev, ok := reverse(q)
		if !ok {
			return false
		}
		back, ok := reverse(rev)
		return ok && back.Equal(q)
	})
}

// Canonical keys are stable across re-rendering and differ for trees
// with different shapes.
func TestPropCanonicalKeyStability(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		return q.StringWithPreds() == q.StringWithPreds() && q.Equal(q)
	})
}

// Enumerated ITs are distinct, and the full enumeration count equals the
// modulo count times 2^(n-1) for graphs of single-conjunct operators.
func TestPropEnumerationCounts(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		g, err := GraphOf(q)
		if err != nil {
			return false
		}
		// Only graphs whose edges stay single-conjunct (no collapsed
		// parallel edges) keep the exact 2^(n-1) relation; the generator
		// may produce repeated rel pairs, so verify via the counter.
		m, err := CountITs(g, true)
		if err != nil {
			return false
		}
		f, err := CountITs(g, false)
		if err != nil {
			return false
		}
		n := int64(g.NumNodes())
		if f != m*(1<<uint(n-1)) {
			return false
		}
		if m > 200 {
			return true // skip materialization for big spaces
		}
		its, err := EnumerateITs(g, true)
		if err != nil || int64(len(its)) != m {
			return false
		}
		seen := map[string]bool{}
		for _, it := range its {
			key := it.StringWithPreds()
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	})
}

// The original tree always appears in the full enumeration of its own
// graph.
func TestPropSelfInEnumeration(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		g, err := GraphOf(q)
		if err != nil {
			return false
		}
		if c, err := CountITs(g, false); err != nil || c > 500 {
			return true // skip large spaces
		}
		its, err := EnumerateITs(g, false)
		if err != nil {
			return false
		}
		for _, it := range its {
			if it.Equal(q) {
				return true
			}
		}
		return false
	})
}

// TreeCondition is invariant under basic transforms on nice trees: a BT
// keeps the graph, hence keeps niceness, hence keeps the tree condition.
func TestPropTreeConditionBTInvariant(t *testing.T) {
	qcheck(t, func(seed int64) bool {
		q := treeFromSeed(seed)
		ok1, _ := TreeCondition(q)
		for _, bt := range ApplicableBTs(q) {
			ok2, _ := TreeCondition(bt.Result)
			if ok1 != ok2 {
				return false
			}
		}
		return true
	})
}
