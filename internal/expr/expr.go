// Package expr implements the paper's operator trees: queries as
// expressions with a bottom-up evaluation rule. A tree whose graph equals
// a given query graph is an *implementing tree* (IT) of that graph; the
// package provides graph extraction (graphof.go), the two basic
// transforms — reversal and reassociation — with their applicability
// conditions (transform.go), and exhaustive enumeration of all ITs of a
// graph (enumerate.go).
package expr

import (
	"fmt"
	"sort"
	"strings"

	"freejoin/internal/algebra"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Op identifies the operator at a tree node.
type Op uint8

// Operators. LeftOuter preserves the left operand (the paper's R1 → R2);
// RightOuter is its "symmetric form" (R1 ← R2), introduced by reversal
// BTs. LeftAnti/RightAnti are the antijoin and its symmetric form;
// Semijoin, GOJ, Restrict and Project complete the algebra of §2, §4 and
// §6.2.
const (
	Leaf Op = iota
	Join
	LeftOuter
	RightOuter
	FullOuter
	LeftAnti
	RightAnti
	Semijoin
	RightSemi
	GOJ
	Restrict
	Project
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case Leaf:
		return "leaf"
	case Join:
		return "join"
	case LeftOuter:
		return "leftouter"
	case RightOuter:
		return "rightouter"
	case FullOuter:
		return "fullouter"
	case LeftAnti:
		return "antijoin"
	case RightAnti:
		return "rightanti"
	case Semijoin:
		return "semijoin"
	case RightSemi:
		return "rightsemi"
	case GOJ:
		return "goj"
	case Restrict:
		return "restrict"
	case Project:
		return "project"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Node is an immutable expression-tree node. Transforms construct new
// nodes and share unchanged subtrees.
type Node struct {
	Op          Op
	Rel         string              // Leaf: ground relation name
	Left, Right *Node               // binary operators; Restrict/Project use Left only
	Pred        predicate.Predicate // join-like operators and Restrict
	GOJAttrs    []relation.Attr     // GOJ: the S attribute set
	ProjAttrs   []relation.Attr     // Project
	ProjDedup   bool                // Project: π (dedup) vs bag projection
}

// NewLeaf returns a leaf referencing a ground relation.
func NewLeaf(rel string) *Node { return &Node{Op: Leaf, Rel: rel} }

// NewJoin returns l — r on p.
func NewJoin(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: Join, Left: l, Right: r, Pred: p}
}

// NewOuter returns l → r on p (left preserved, right null-supplied).
func NewOuter(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: LeftOuter, Left: l, Right: r, Pred: p}
}

// NewRightOuter returns l ← r on p (right preserved, left null-supplied).
func NewRightOuter(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: RightOuter, Left: l, Right: r, Pred: p}
}

// NewFullOuter returns the two-sided outerjoin of l and r on p. The
// paper sets two-sided outerjoin aside for its reorderability theory; it
// participates here in evaluation and in the §4 simplification (a strong
// predicate above converts it toward one-sided outerjoin or join).
func NewFullOuter(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: FullOuter, Left: l, Right: r, Pred: p}
}

// NewAnti returns l ▷ r on p.
func NewAnti(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: LeftAnti, Left: l, Right: r, Pred: p}
}

// NewSemi returns l ⋉ r on p.
func NewSemi(l, r *Node, p predicate.Predicate) *Node {
	return &Node{Op: Semijoin, Left: l, Right: r, Pred: p}
}

// NewGOJ returns GOJ[S][p](l, r).
func NewGOJ(l, r *Node, p predicate.Predicate, s []relation.Attr) *Node {
	return &Node{Op: GOJ, Left: l, Right: r, Pred: p, GOJAttrs: s}
}

// NewRestrict returns σ[p](child).
func NewRestrict(child *Node, p predicate.Predicate) *Node {
	return &Node{Op: Restrict, Left: child, Pred: p}
}

// NewProject returns the projection of child onto attrs; dedup selects π
// (set) semantics.
func NewProject(child *Node, attrs []relation.Attr, dedup bool) *Node {
	return &Node{Op: Project, Left: child, ProjAttrs: attrs, ProjDedup: dedup}
}

// IsJoinLike reports whether the node is a binary join-family operator.
func (n *Node) IsJoinLike() bool {
	switch n.Op {
	case Join, LeftOuter, RightOuter, FullOuter, LeftAnti, RightAnti, Semijoin, RightSemi, GOJ:
		return true
	}
	return false
}

// Relations appends the ground relations referenced by the subtree, in
// leaf order.
func (n *Node) Relations() []string {
	var out []string
	n.walkLeaves(func(rel string) { out = append(out, rel) })
	return out
}

func (n *Node) walkLeaves(f func(string)) {
	if n == nil {
		return
	}
	if n.Op == Leaf {
		f(n.Rel)
		return
	}
	n.Left.walkLeaves(f)
	n.Right.walkLeaves(f)
}

// RelationSet returns the set of ground relations in the subtree, erroring
// on duplicates (the paper assumes no relation is used more than once).
func (n *Node) RelationSet() (map[string]bool, error) {
	set := map[string]bool{}
	for _, r := range n.Relations() {
		if set[r] {
			return nil, fmt.Errorf("expr: relation %s used more than once", r)
		}
		set[r] = true
	}
	return set, nil
}

// Size returns the number of leaves.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	if n.Op == Leaf {
		return 1
	}
	return n.Left.Size() + n.Right.Size()
}

// Source resolves ground relation names to relations.
type Source interface {
	Relation(name string) (*relation.Relation, error)
}

// DB is the simplest Source: a name → relation map.
type DB map[string]*relation.Relation

// Relation implements Source.
func (d DB) Relation(name string) (*relation.Relation, error) {
	r, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown relation %s", name)
	}
	return r, nil
}

// Eval evaluates the expression bottom-up against src using the reference
// algebra (package algebra). This is the paper's eval(Q).
func (n *Node) Eval(src Source) (*relation.Relation, error) {
	switch n.Op {
	case Leaf:
		return src.Relation(n.Rel)
	case Restrict:
		child, err := n.Left.Eval(src)
		if err != nil {
			return nil, err
		}
		return algebra.Restrict(child, n.Pred)
	case Project:
		child, err := n.Left.Eval(src)
		if err != nil {
			return nil, err
		}
		return algebra.Project(child, n.ProjAttrs, n.ProjDedup)
	}
	l, err := n.Left.Eval(src)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.Eval(src)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case Join:
		return algebra.Join(l, r, n.Pred)
	case LeftOuter:
		return algebra.LeftOuterJoin(l, r, n.Pred)
	case RightOuter:
		return algebra.LeftOuterJoin(r, l, n.Pred)
	case FullOuter:
		return algebra.FullOuterJoin(l, r, n.Pred)
	case LeftAnti:
		return algebra.Antijoin(l, r, n.Pred)
	case RightAnti:
		return algebra.Antijoin(r, l, n.Pred)
	case Semijoin:
		return algebra.Semijoin(l, r, n.Pred)
	case RightSemi:
		return algebra.Semijoin(r, l, n.Pred)
	case GOJ:
		return algebra.GeneralizedOuterJoin(l, r, n.Pred, n.GOJAttrs)
	default:
		return nil, fmt.Errorf("expr: cannot evaluate operator %s", n.Op)
	}
}

// String renders the expression in the paper's infix notation without
// predicates, e.g. "((R - S) -> T)".
func (n *Node) String() string { return n.render(false) }

// StringWithPreds renders the expression including operator predicates;
// it is a canonical key for trees (used by the BT-closure search).
func (n *Node) StringWithPreds() string { return n.render(true) }

func (n *Node) render(preds bool) string {
	if n == nil {
		return "<nil>"
	}
	var b strings.Builder
	n.renderTo(&b, preds)
	return b.String()
}

func (n *Node) renderTo(b *strings.Builder, preds bool) {
	switch n.Op {
	case Leaf:
		b.WriteString(n.Rel)
		return
	case Restrict:
		b.WriteString("sigma[")
		b.WriteString(n.Pred.String())
		b.WriteString("](")
		n.Left.renderTo(b, preds)
		b.WriteString(")")
		return
	case Project:
		b.WriteString("pi[")
		for i, a := range n.ProjAttrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString("](")
		n.Left.renderTo(b, preds)
		b.WriteString(")")
		return
	}
	b.WriteString("(")
	n.Left.renderTo(b, preds)
	b.WriteString(" ")
	b.WriteString(n.opSymbol())
	if preds && n.Pred != nil {
		b.WriteString("[")
		b.WriteString(predKey(n.Pred))
		b.WriteString("]")
	}
	if n.Op == GOJ {
		b.WriteString("{")
		for i, a := range n.GOJAttrs {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(a.String())
		}
		b.WriteString("}")
	}
	b.WriteString(" ")
	n.Right.renderTo(b, preds)
	b.WriteString(")")
}

func (n *Node) opSymbol() string {
	switch n.Op {
	case Join:
		return "-"
	case LeftOuter:
		return "->"
	case RightOuter:
		return "<-"
	case FullOuter:
		return "<->"
	case LeftAnti:
		return ">"
	case RightAnti:
		return "<"
	case Semijoin:
		return "|x"
	case RightSemi:
		return "x|"
	case GOJ:
		return "goj"
	default:
		return "?"
	}
}

// predKey renders a predicate with its top-level conjuncts in sorted
// order, so that operators carrying the same conjunct set compare equal
// regardless of how the conjunction was assembled (enumeration vs
// conjunct-moving reassociations).
func predKey(p predicate.Predicate) string {
	cs := predicate.Conjuncts(p)
	if len(cs) == 1 {
		return cs[0].String()
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " and ")
}

// Equal reports structural equality of two trees, comparing operators,
// relations, predicate renderings (modulo conjunct order), and attribute
// lists.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	return n.StringWithPreds() == m.StringWithPreds()
}
