package expr

import (
	"strings"
	"testing"

	"freejoin/internal/predicate"
)

func TestReversal(t *testing.T) {
	j := NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	rev, ok := reverse(j)
	if !ok || rev.String() != "(S - R)" {
		t.Errorf("join reversal: %v %v", rev, ok)
	}
	oj := NewOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	rev, ok = reverse(oj)
	if !ok || rev.Op != RightOuter || rev.String() != "(S <- R)" {
		t.Errorf("outer reversal: %v", rev)
	}
	back, ok := reverse(rev)
	if !ok || !back.Equal(oj) {
		t.Error("reversal must be an involution")
	}
	aj := NewAnti(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	rev, ok = reverse(aj)
	if !ok || rev.Op != RightAnti {
		t.Errorf("anti reversal: %v", rev)
	}
	if _, ok := reverse(NewLeaf("R")); ok {
		t.Error("leaf cannot reverse")
	}
	if _, ok := reverse(NewRestrict(NewLeaf("R"), predicate.TruePred)); ok {
		t.Error("restrict cannot reverse")
	}
}

func TestReassociateSimple(t *testing.T) {
	// ((R - S) - T) with p_rs, p_st => (R - (S - T)).
	q := NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	got, ok := reassociate(q)
	if !ok {
		t.Fatal("reassociation must apply")
	}
	if got.String() != "(R - (S - T))" {
		t.Errorf("reassociated = %v", got)
	}
	// Graph is preserved (the §3.2 observation).
	g1, err1 := GraphOf(q)
	g2, err2 := GraphOf(got)
	if err1 != nil || err2 != nil || !g1.Equal(g2) {
		t.Error("reassociation must preserve the query graph")
	}
}

func TestReassociateMovesConjunct(t *testing.T) {
	// ((R - S) -[p_st ∧ p_rt] T): conjunct p_rt references Q1=R, so it
	// moves onto the inner operator: (R -[p_rs ∧ p_rt] (S -[p_st] T)).
	q := NewJoin(
		NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
		NewLeaf("T"),
		predicate.NewAnd(eqp("S", "T"), eqp("R", "T")))
	got, ok := reassociate(q)
	if !ok {
		t.Fatal("reassociation with conjunct movement must apply for joins")
	}
	if got.String() != "(R - (S - T))" {
		t.Errorf("shape = %v", got)
	}
	rootPred := got.Pred.String()
	if !strings.Contains(rootPred, "R.a = S.a") || !strings.Contains(rootPred, "R.a = T.a") {
		t.Errorf("root predicate after move = %q", rootPred)
	}
	innerPred := got.Right.Pred.String()
	if innerPred != "S.a = T.a" {
		t.Errorf("inner predicate = %q", innerPred)
	}
	g1, _ := GraphOf(q)
	g2, err := GraphOf(got)
	if err != nil || !g1.Equal(g2) {
		t.Error("conjunct-moving reassociation must preserve the graph")
	}
}

func TestReassociateRejections(t *testing.T) {
	// Predicate does not reference Q2 = S: ((R - S) -[p_rt] T).
	q1 := NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("R", "T"))
	if _, ok := reassociate(q1); ok {
		t.Error("must reject: predicate references only Q1")
	}
	// Conjunct movement with an outerjoin: ((R -> S) -[p_st ∧ p_rt] T).
	q2 := NewJoin(
		NewOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
		NewLeaf("T"),
		predicate.NewAnd(eqp("S", "T"), eqp("R", "T")))
	if _, ok := reassociate(q2); ok {
		t.Error("must reject: conjunct movement requires two regular joins")
	}
	// Left child is a leaf.
	q3 := NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if _, ok := reassociate(q3); ok {
		t.Error("must reject: no inner operator")
	}
	// Outer operator at ⊙2 referencing only Q1 (applicability requires Q2).
	q4 := NewOuter(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("R", "T"))
	if _, ok := reassociate(q4); ok {
		t.Error("must reject: outer predicate references only Q1")
	}
	// Non-join-like root.
	q5 := NewAnti(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	if _, ok := reassociate(q5); ok {
		t.Error("must reject: antijoin is outside the IT operator set")
	}
}

func TestReassociateOuterjoins(t *testing.T) {
	// ((X -> Y) -> Z) reassociates to (X -> (Y -> Z)) (identity 12 shape).
	q := NewOuter(NewOuter(NewLeaf("X"), NewLeaf("Y"), eqp("X", "Y")), NewLeaf("Z"), eqp("Y", "Z"))
	got, ok := reassociate(q)
	if !ok || got.String() != "(X -> (Y -> Z))" {
		t.Errorf("outer reassociation: %v %v", got, ok)
	}
	// ((X - Y) -> Z) => (X - (Y -> Z)) (identity 11 shape).
	q2 := NewOuter(NewJoin(NewLeaf("X"), NewLeaf("Y"), eqp("X", "Y")), NewLeaf("Z"), eqp("Y", "Z"))
	got2, ok := reassociate(q2)
	if !ok || got2.String() != "(X - (Y -> Z))" {
		t.Errorf("mixed reassociation: %v %v", got2, ok)
	}
	// ((X -> Y) - Z) => (X -> (Y - Z)): syntactically applicable (it is
	// the non-preserving [X→Y—Z] pattern caught by Lemma 2, not by BT
	// applicability).
	q3 := NewJoin(NewOuter(NewLeaf("X"), NewLeaf("Y"), eqp("X", "Y")), NewLeaf("Z"), eqp("Y", "Z"))
	got3, ok := reassociate(q3)
	if !ok || got3.String() != "(X -> (Y - Z))" {
		t.Errorf("suspect reassociation: %v %v", got3, ok)
	}
}

func TestApplicableBTsPreserveGraph(t *testing.T) {
	q := NewOuter(
		NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T")),
		NewLeaf("U"), eqp("T", "U"))
	g, err := GraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	bts := ApplicableBTs(q)
	if len(bts) == 0 {
		t.Fatal("expected applicable BTs")
	}
	var sawReversal, sawReassoc bool
	for _, bt := range bts {
		if bt.Kind == Reversal {
			sawReversal = true
		} else {
			sawReassoc = true
		}
		if !Implements(bt.Result, g) {
			t.Errorf("BT %v broke the graph: %v", bt, bt.Result)
		}
		if bt.String() == "" {
			t.Error("BT.String empty")
		}
	}
	if !sawReversal || !sawReassoc {
		t.Errorf("expected both BT kinds, reversal=%v reassoc=%v", sawReversal, sawReassoc)
	}
}

func TestApplicableBTsAtDepth(t *testing.T) {
	// The inner ((R-S)-T) sits under the root; reassociation must also be
	// offered at path [0].
	q := NewOuter(
		NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T")),
		NewLeaf("U"), eqp("T", "U"))
	found := false
	for _, bt := range ApplicableBTs(q) {
		if bt.Kind == Reassociation && len(bt.Path) == 1 && bt.Path[0] == 0 {
			found = true
			if bt.Result.String() != "((R - (S - T)) -> U)" {
				t.Errorf("deep reassociation = %v", bt.Result)
			}
		}
	}
	if !found {
		t.Error("no reassociation found at path [0]")
	}
}

func TestClosureChain(t *testing.T) {
	// Pure join chain R-S-T: closure must contain every IT (full
	// enumeration: 8 trees).
	q := NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	cl, err := Closure(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := GraphOf(q)
	all, err := EnumerateITs(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != len(all) {
		t.Fatalf("closure size %d != enumeration size %d", len(cl), len(all))
	}
	for _, it := range all {
		if _, ok := cl[it.StringWithPreds()]; !ok {
			t.Errorf("IT missing from closure: %v", it)
		}
	}
}

func TestClosureLimit(t *testing.T) {
	q := NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	if _, err := Closure(q, 2); err == nil {
		t.Error("closure must respect the limit")
	}
}

func TestBTPath(t *testing.T) {
	from := NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T"))
	to := NewJoin(NewLeaf("R"), NewJoin(NewLeaf("S"), NewLeaf("T"), eqp("S", "T")), eqp("R", "S"))
	path, err := BTPath(from, to, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || !path[0].Equal(from) || !path[len(path)-1].Equal(to) {
		t.Fatalf("path = %v", path)
	}
	// Trivial path.
	self, err := BTPath(from, from, 10)
	if err != nil || len(self) != 1 {
		t.Errorf("self path = %v, %v", self, err)
	}
	// Unreachable target (different graph).
	other := NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if _, err := BTPath(from, other, 1000); err == nil {
		t.Error("unreachable target must fail")
	}
	// Limit.
	if _, err := BTPath(from, to, 1); err == nil {
		t.Error("limit must be enforced")
	}
}

func TestBTKindString(t *testing.T) {
	if Reversal.String() != "reversal" || Reassociation.String() != "reassociation" {
		t.Error("BTKind.String broken")
	}
}
