package expr

import (
	"strings"
	"testing"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// TestFigure1Graph rebuilds a Fig. 1-style query — joins among a chain
// plus an outerjoin — and checks both representations line up (DESIGN.md
// experiment E7). The reassociation "joining R and T" is disallowed
// because the graph has no R–T edge.
func TestFigure1Graph(t *testing.T) {
	// Q = ((R - S) - T) -> U with predicates p_rs, p_st, p_tu.
	q := NewOuter(
		NewJoin(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), NewLeaf("T"), eqp("S", "T")),
		NewLeaf("U"), eqp("T", "U"))
	g, err := GraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || len(g.Edges()) != 3 {
		t.Fatalf("graph shape: %v", g)
	}
	var joins, outers int
	for _, e := range g.Edges() {
		if e.Kind == graph.OuterEdge {
			outers++
			if e.U != "T" || e.V != "U" {
				t.Errorf("outer edge = %v, want T -> U", e)
			}
		} else {
			joins++
		}
	}
	if joins != 2 || outers != 1 {
		t.Errorf("joins=%d outers=%d", joins, outers)
	}
	if !Implements(q, g) {
		t.Error("q must implement its own graph")
	}
	// No R–T edge: a tree joining R and T directly cannot implement g.
	qBad := NewOuter(
		NewJoin(NewJoin(NewLeaf("R"), NewLeaf("T"), eqp("R", "T")), NewLeaf("S"), eqp("S", "T")),
		NewLeaf("U"), eqp("T", "U"))
	if Implements(qBad, g) {
		t.Error("a tree with an R-T join must not implement the Fig. 1 graph")
	}
}

func TestGraphOfCollapsesParallelJoinConjuncts(t *testing.T) {
	p1 := predicate.Eq(relation.A("R", "fn"), relation.A("S", "fn"))
	p2 := predicate.Eq(relation.A("R", "ln"), relation.A("S", "ln"))
	q := NewJoin(NewLeaf("R"), NewLeaf("S"), predicate.NewAnd(p1, p2))
	g, err := GraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges()) != 1 {
		t.Fatalf("parallel conjunct edges must collapse: %v", g)
	}
	if got := g.Edges()[0].Pred.String(); !strings.Contains(got, "fn") || !strings.Contains(got, "ln") {
		t.Errorf("collapsed predicate: %q", got)
	}
}

func TestGraphOfOuterDirections(t *testing.T) {
	// LeftOuter: R preserved, S null-supplied => edge R -> S.
	g1, err := GraphOf(NewOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")))
	if err != nil {
		t.Fatal(err)
	}
	e := g1.Edges()[0]
	if e.U != "R" || e.V != "S" || e.Kind != graph.OuterEdge {
		t.Errorf("LeftOuter edge = %v", e)
	}
	// RightOuter: S preserved, R null-supplied => edge S -> R.
	g2, err := GraphOf(NewRightOuter(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")))
	if err != nil {
		t.Fatal(err)
	}
	e = g2.Edges()[0]
	if e.U != "S" || e.V != "R" {
		t.Errorf("RightOuter edge = %v", e)
	}
}

func TestGraphOfErrors(t *testing.T) {
	cases := []struct {
		name string
		q    *Node
	}{
		{"duplicate relation", NewJoin(NewLeaf("R"), NewLeaf("R"), eqp("R", "R"))},
		{"conjunct referencing one relation",
			NewJoin(NewLeaf("R"), NewLeaf("S"), predicate.EqConst(relation.A("R", "a"), relation.Int(1)))},
		{"conjunct referencing three relations", NewJoin(
			NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
			NewLeaf("T"),
			predicate.NewOr(eqp("R", "T"), eqp("S", "T")))}, // one conjunct touching R, S and T
		{"conjunct with both relations on one side", NewJoin(
			NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
			NewLeaf("T"),
			predicate.NewAnd(eqp("R", "S"), eqp("S", "T")))},
		{"outerjoin predicate with conjuncts across three relations", NewOuter(
			NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
			NewLeaf("T"),
			predicate.NewAnd(eqp("R", "T"), eqp("S", "T")))},
		{"antijoin has no edge kind", NewAnti(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))},
		{"semijoin predicate referencing one relation",
			NewSemi(NewLeaf("R"), NewLeaf("S"), predicate.EqConst(relation.A("R", "a"), relation.Int(1)))},
		{"restriction has no edge kind", NewRestrict(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")), predicate.TruePred)},
		{"goj has no edge kind", NewGOJ(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"), nil)},
	}
	for _, tc := range cases {
		if _, err := GraphOf(tc.q); err == nil {
			t.Errorf("%s: GraphOf must fail for %v", tc.name, tc.q)
		}
	}
}

func TestGraphOfJoinWithMultiPairConjuncts(t *testing.T) {
	// A join between (R-S) and T whose two conjuncts reference different
	// pairs: S-T and R-T. Both legal; two edges result.
	q := NewJoin(
		NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")),
		NewLeaf("T"),
		predicate.NewAnd(eqp("S", "T"), eqp("R", "T")))
	g, err := GraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges()) != 3 {
		t.Fatalf("want 3 edges (R-S, S-T, R-T), got %v", g)
	}
	if ok, _ := g.IsNice(); !ok {
		t.Error("cyclic pure-join graph is nice")
	}
}

func TestImplementsRejectsUndefinedGraph(t *testing.T) {
	g, _ := GraphOf(NewJoin(NewLeaf("R"), NewLeaf("S"), eqp("R", "S")))
	bad := NewAnti(NewLeaf("R"), NewLeaf("S"), eqp("R", "S"))
	if Implements(bad, g) {
		t.Error("tree with undefined graph implements nothing")
	}
}
