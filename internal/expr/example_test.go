package expr_test

import (
	"fmt"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func eq(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

// EnumerateITs lists every implementing tree of a query graph — the
// plan space the free-reorderability theorem makes safe.
func ExampleEnumerateITs() {
	q := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eq("R", "S")),
		expr.NewLeaf("T"), eq("S", "T"))
	g, err := expr.GraphOf(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, it := range its {
		fmt.Println(it)
	}
	// Output:
	// ((R - S) -> T)
	// (R - (S -> T))
}

// ApplicableBTs enumerates the §3.2 basic transforms of a tree.
func ExampleApplicableBTs() {
	q := expr.NewJoin(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eq("R", "S")),
		expr.NewLeaf("T"), eq("S", "T"))
	for _, bt := range expr.ApplicableBTs(q) {
		fmt.Printf("%s: %s\n", bt.Kind, bt.Result)
	}
	// Output:
	// reversal: (T - (R - S))
	// reassociation: (R - (S - T))
	// reversal: ((S - R) - T)
}

// TreeCondition checks reorderability directly on the expression tree
// (the §6.3 conjecture).
func ExampleTreeCondition() {
	good := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eq("R", "S")),
		expr.NewLeaf("T"), eq("S", "T"))
	ok, _ := expr.TreeCondition(good)
	fmt.Println(ok)

	bad := expr.NewOuter(expr.NewLeaf("R"),
		expr.NewJoin(expr.NewLeaf("S"), expr.NewLeaf("T"), eq("S", "T")),
		eq("R", "S"))
	ok, reason := expr.TreeCondition(bad)
	fmt.Println(ok)
	fmt.Println(reason)
	// Output:
	// true
	// false
	// null-supplied operand (S - T) of an outerjoin is created by a regular join
}

// Eval runs a query bottom-up against a database, with the reference bag
// semantics.
func ExampleNode_Eval() {
	q := expr.NewOuter(expr.NewLeaf("Dept"), expr.NewLeaf("Emp"),
		predicate.Eq(relation.A("Dept", "dno"), relation.A("Emp", "dno")))
	db := expr.DB{
		"Dept": relation.FromRows("Dept", []string{"dno"}, []any{1}, []any{2}),
		"Emp":  relation.FromRows("Emp", []string{"dno", "name"}, []any{1, "ada"}),
	}
	out, err := q.Eval(db)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(out)
	// Output:
	// Dept.dno  Emp.dno  Emp.name
	// --------  -------  --------
	// 1         1        ada
	// 2         -        -
	// (2 rows)
}
