package lang

import (
	"strings"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/entity"
	"freejoin/internal/relation"
)

// paperStore builds the §5 schema and a small instance:
//
//	EMPLOYEE(Name, D#, Rank; ChildName set)
//	REPORT(Title)
//	DEPARTMENT(D#, Location; Manager -> EMPLOYEE, Audit -> REPORT)
func paperStore(t *testing.T) *entity.Store {
	t.Helper()
	s := entity.NewStore()
	for _, def := range []entity.TypeDef{
		{Name: "EMPLOYEE", Scalars: []string{"Name", "D#", "Rank"}, Sets: []string{"ChildName"}},
		{Name: "REPORT", Scalars: []string{"Title"}},
		{Name: "DEPARTMENT", Scalars: []string{"D#", "Location"},
			Refs: map[string]string{"Manager": "EMPLOYEE", "Audit": "REPORT"}},
	} {
		if err := s.Define(def); err != nil {
			t.Fatal(err)
		}
	}
	mkEmp := func(name string, dept, rank int64, children ...string) entity.OID {
		oid, err := s.New("EMPLOYEE", map[string]relation.Value{
			"Name": relation.Str(name), "D#": relation.Int(dept), "Rank": relation.Int(rank)})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range children {
			if err := s.AddToSet(oid, "ChildName", relation.Str(c)); err != nil {
				t.Fatal(err)
			}
		}
		return oid
	}
	ana := mkEmp("ana", 1, 12, "kim", "lee")
	mkEmp("bo", 1, 4) // no children
	cruz := mkEmp("cruz", 2, 11, "max")

	rep, err := s.New("REPORT", map[string]relation.Value{"Title": relation.Str("audit-zurich")})
	if err != nil {
		t.Fatal(err)
	}
	mkDept := func(d int64, loc string, mgr, audit entity.OID) entity.OID {
		oid, err := s.New("DEPARTMENT", map[string]relation.Value{
			"D#": relation.Int(d), "Location": relation.Str(loc)})
		if err != nil {
			t.Fatal(err)
		}
		if mgr != 0 {
			if err := s.SetRef(oid, "Manager", mgr); err != nil {
				t.Fatal(err)
			}
		}
		if audit != 0 {
			if err := s.SetRef(oid, "Audit", audit); err != nil {
				t.Fatal(err)
			}
		}
		return oid
	}
	mkDept(1, "Zurich", ana, rep)
	mkDept(2, "Queretaro", cruz, 0)
	mkDept(3, "Boston", 0, 0) // no manager, no audit
	return s
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{"a - b", "'unterminated", "select ? from x"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("SELECT All FROM E*Child, D-->Mgr WHERE E.D# = 3 AND D.x <> 'a' AND a.b <= -2.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// Spot checks.
	if toks[4].kind != tokStar || toks[5].text != "Child" {
		t.Errorf("star parse: %v", toks[:7])
	}
	if toks[8].kind != tokArrow {
		t.Errorf("arrow parse: %v", toks[6:10])
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokNumber && tk.text == "-2.5" {
			found = true
		}
	}
	if !found {
		t.Error("negative number not lexed")
	}
	_ = kinds
}

func TestParseQueries(t *testing.T) {
	q, err := Parse(`Select All
		From EMPLOYEE*ChildName, DEPARTMENT
		Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 || len(q.Where) != 2 {
		t.Fatalf("shape: %+v", q)
	}
	if q.From[0].String() != "EMPLOYEE*ChildName" {
		t.Errorf("item = %s", q.From[0])
	}
	q2, err := Parse("select all from DEPARTMENT-->Manager-->Audit where DEPARTMENT.Location = 'Zurich'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.From[0].Steps) != 2 || q2.From[0].Steps[1].Kind != Link {
		t.Fatalf("steps: %+v", q2.From[0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"select",
		"select all",
		"select all from",
		"select all from E where",
		"select all from E where E.x",
		"select all from E where E.x =",
		"select all from E where E = 1",       // missing .field
		"select all from E*",                  // missing field
		"select all from E-->",                // missing field
		"select all from E extra",             // trailing
		"select all from E where E.x = 1 and", // dangling and
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestUnnestQuery is the paper's first §5 example: all employees of
// Queretaro departments, one row per child, employees without children
// preserved with a null ChildName.
func TestUnnestQuery(t *testing.T) {
	s := paperStore(t)
	tr, out, err := Run(s, `Select All
		From EMPLOYEE*ChildName, DEPARTMENT
		Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'`)
	if err != nil {
		t.Fatal(err)
	}
	// Queretaro = dept 2 = cruz with one child: one row, child max.
	if out.Len() != 1 {
		t.Fatalf("rows:\n%v", out)
	}
	if v, _ := out.Row(0).Get(relation.A("EMPLOYEE_ChildName", "ChildName")); v != relation.Str("max") {
		t.Errorf("child = %v", v)
	}
	// The block is freely reorderable (§5.3).
	if !tr.Analysis.Free {
		t.Fatalf("block not free: %s", tr.Analysis)
	}
}

func TestUnnestPreservesChildless(t *testing.T) {
	s := paperStore(t)
	_, out, err := Run(s, `Select All From EMPLOYEE*ChildName, DEPARTMENT
		Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich'`)
	if err != nil {
		t.Fatal(err)
	}
	// Zurich = dept 1: ana (2 children) + bo (childless, null child row).
	if out.Len() != 3 {
		t.Fatalf("rows = %d:\n%v", out.Len(), out)
	}
	nulls := 0
	for i := 0; i < out.Len(); i++ {
		if v, _ := out.Row(i).Get(relation.A("EMPLOYEE_ChildName", "ChildName")); v.IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Errorf("childless rows = %d, want 1", nulls)
	}
}

// TestLinkQuery is the paper's second §5 example: Zurich departments with
// manager attributes and audit report, departments without either still
// returned.
func TestLinkQuery(t *testing.T) {
	s := paperStore(t)
	tr, out, err := Run(s, `Select All From DEPARTMENT-->Manager-->Audit
		Where DEPARTMENT.Location = 'Zurich'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows:\n%v", out)
	}
	row := out.Row(0)
	if v, _ := row.Get(relation.A("DEPARTMENT_Manager", "Name")); v != relation.Str("ana") {
		t.Errorf("manager = %v", v)
	}
	if v, _ := row.Get(relation.A("DEPARTMENT_Audit", "Title")); v != relation.Str("audit-zurich") {
		t.Errorf("audit = %v", v)
	}
	if !tr.Analysis.Free {
		t.Fatalf("block not free: %s", tr.Analysis)
	}
	// Audit resolved on DEPARTMENT, not on the EMPLOYEE manager.
	if !strings.Contains(tr.Block.String(), "DEPARTMENT_Audit") {
		t.Errorf("tree = %s", tr.Block)
	}
}

func TestLinkPreservesMissingRefs(t *testing.T) {
	s := paperStore(t)
	_, out, err := Run(s, "Select All From DEPARTMENT-->Manager-->Audit")
	if err != nil {
		t.Fatal(err)
	}
	// All three departments appear; Boston has nulls for both.
	if out.Len() != 3 {
		t.Fatalf("rows = %d:\n%v", out.Len(), out)
	}
}

// TestProsecutorQuery is the paper's combined example: employees (with
// children unnested) of Zurich departments with manager and audit, rank
// above 10.
func TestProsecutorQuery(t *testing.T) {
	s := paperStore(t)
	tr, out, err := Run(s, `Select All
		From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit
		Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10`)
	if err != nil {
		t.Fatal(err)
	}
	// Zurich, rank>10: ana only, with 2 children.
	if out.Len() != 2 {
		t.Fatalf("rows = %d:\n%v", out.Len(), out)
	}
	if !tr.Analysis.Free {
		t.Fatalf("block not free: %s", tr.Analysis)
	}
	// Graph shape: 5 nodes (EMPLOYEE, its child values, DEPARTMENT,
	// manager, audit), 1 join edge, 3 outer edges.
	if tr.Graph.NumNodes() != 5 || len(tr.Graph.Edges()) != 4 {
		t.Fatalf("graph:\n%v", tr.Graph)
	}
}

// TestSection5QueriesReorderable (E13): for each paper query, every
// implementing tree of the translated block evaluates to the same result.
func TestSection5QueriesReorderable(t *testing.T) {
	s := paperStore(t)
	queries := []string{
		"Select All From EMPLOYEE*ChildName, DEPARTMENT Where EMPLOYEE.D# = DEPARTMENT.D#",
		"Select All From DEPARTMENT-->Manager-->Audit",
		"Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit Where EMPLOYEE.D# = DEPARTMENT.D#",
		"Select All From EMPLOYEE*ChildName",
		"Select All From DEPARTMENT-->Manager, EMPLOYEE Where EMPLOYEE.D# = DEPARTMENT.D#",
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		tr, err := Translate(s, q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !tr.Analysis.Free {
			t.Fatalf("%s: block not freely reorderable: %s", src, tr.Analysis)
		}
		res, err := core.Verify(tr.Graph, tr.DB)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !res.AllEqual {
			t.Fatalf("%s: implementing trees disagree:\n%v\nvs\n%v", src, res.ResultA, res.ResultB)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	s := paperStore(t)
	cases := []string{
		// Unknown base type.
		"select all from NOPE",
		// Unknown field.
		"select all from EMPLOYEE*Nope",
		"select all from DEPARTMENT-->Nope",
		// Unnesting a scalar.
		"select all from EMPLOYEE*Name",
		// Variable used twice.
		"select all from EMPLOYEE, EMPLOYEE",
		// Cartesian product.
		"select all from EMPLOYEE, DEPARTMENT",
		// Derived attribute in Where (§5.1 restriction).
		"select all from EMPLOYEE*ChildName, DEPARTMENT where EMPLOYEE.D# = DEPARTMENT.D# and EMPLOYEE_ChildName.ChildName = 'kim'",
		// Unknown variable in Where.
		"select all from EMPLOYEE where NOPE.x = 1",
		// Unknown scalar in Where.
		"select all from EMPLOYEE where EMPLOYEE.Nope = 1",
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			continue // parse-level failure also acceptable for some
		}
		if _, err := Translate(s, q); err == nil {
			t.Errorf("Translate(%q) should fail", src)
		}
	}
}

func TestWhereOperatorsAndLiterals(t *testing.T) {
	s := paperStore(t)
	for _, src := range []string{
		"select all from EMPLOYEE where EMPLOYEE.Rank >= 4",
		"select all from EMPLOYEE where EMPLOYEE.Rank < 100",
		"select all from EMPLOYEE where EMPLOYEE.Rank <= 12",
		"select all from EMPLOYEE where EMPLOYEE.Rank <> 4",
		"select all from EMPLOYEE where EMPLOYEE.Name = 'ana'",
		"select all from EMPLOYEE where EMPLOYEE.Rank > 2.5",
	} {
		_, out, err := Run(s, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: no rows", src)
		}
	}
	// OID column usable in Where.
	if _, out, err := Run(s, "select all from EMPLOYEE where EMPLOYEE.@oid >= 1"); err != nil || out.Len() != 3 {
		t.Errorf("@oid where: %v", err)
	}
}
