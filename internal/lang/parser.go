package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// StepKind is a From-list postfix operator.
type StepKind uint8

// From-item postfix operators.
const (
	Unnest StepKind = iota // *Field
	Link                   // -->Field
)

// String returns the operator's surface syntax.
func (k StepKind) String() string {
	if k == Link {
		return "-->"
	}
	return "*"
}

// Step is one postfix application in a From-item.
type Step struct {
	Kind  StepKind
	Field string
}

// FromItem is a base entity type followed by UnNest/Link steps, e.g.
// EMPLOYEE*ChildName or DEPARTMENT-->Manager-->Audit.
type FromItem struct {
	Base  string
	Steps []Step
}

// String renders the item in surface syntax.
func (f FromItem) String() string {
	var b strings.Builder
	b.WriteString(f.Base)
	for _, s := range f.Steps {
		b.WriteString(s.Kind.String())
		b.WriteString(s.Field)
	}
	return b.String()
}

// Operand of a Where comparison: a qualified attribute or a literal.
type Operand struct {
	Var, Field string // qualified attribute when Var != ""
	Lit        string // literal text otherwise
	IsString   bool
	IsNumber   bool
}

// Condition is one conjunct of the Where clause: left op right.
type Condition struct {
	Op          string // = <> < <= > >=
	Left, Right Operand
}

// Query is a parsed Select-From-Where block.
type Query struct {
	From  []FromItem
	Where []Condition
}

// Parse parses "SELECT ALL FROM item, item... [WHERE cond AND cond...]".
// Keywords are case-insensitive. Per §5.1, the select list is ALL (the
// operators determine the scheme), and the Where clause is a conjunction
// of comparisons over base-relation attributes.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) keyword(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return fmt.Errorf("lang: expected %s, got %s", word, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("lang: expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("all"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, *item)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.keyword("where") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, *cond)
			if p.keyword("and") {
				continue
			}
			break
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("lang: trailing input at %s", p.peek())
	}
	return q, nil
}

func (p *parser) parseFromItem() (*FromItem, error) {
	base, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	item := &FromItem{Base: base}
	for {
		switch p.peek().kind {
		case tokStar:
			p.next()
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Steps = append(item.Steps, Step{Kind: Unnest, Field: f})
		case tokArrow:
			p.next()
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Steps = append(item.Steps, Step{Kind: Link, Field: f})
		default:
			return item, nil
		}
	}
}

// ParseCondition parses a single comparison "operand op operand" on its
// own — the form used by enclosing-block restrictions (§5.1 lets derived
// attributes be "restricted in an enclosing query block").
func ParseCondition(src string) (*Condition, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	cond, err := p.parseCondition()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("lang: trailing input at %s", p.peek())
	}
	return cond, nil
}

func (p *parser) parseCondition() (*Condition, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.kind != tokCmp {
		return nil, fmt.Errorf("lang: expected comparison operator, got %s", op)
	}
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Condition{Op: op.text, Left: *left, Right: *right}, nil
}

func (p *parser) parseOperand() (*Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		if p.peek().kind != tokDot {
			return nil, fmt.Errorf("lang: expected '.' after %q (attributes are Var.Field)", t.text)
		}
		p.next()
		f, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Operand{Var: t.text, Field: f}, nil
	case tokNumber:
		p.next()
		if _, err := strconv.ParseFloat(t.text, 64); err != nil {
			return nil, fmt.Errorf("lang: bad number %q", t.text)
		}
		return &Operand{Lit: t.text, IsNumber: true}, nil
	case tokString:
		p.next()
		return &Operand{Lit: t.text, IsString: true}, nil
	default:
		return nil, fmt.Errorf("lang: expected attribute or literal, got %s", t)
	}
}
