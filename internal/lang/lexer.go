// Package lang implements §5's query language: SQL-style
// Select-From-Where blocks whose From-list supports the UnNest (*) and
// Link (-->) operators over the entity store, translated to join/
// outerjoin expressions exactly as §5.2 prescribes. The §5.3 observation —
// every query block is freely reorderable — is checked by the translator
// and exercised in the tests.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokStar
	tokArrow // -->
	tokCmp   // = <> < <= > >=
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// String renders the token for error messages.
func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// isIdentRune allows letters, digits, underscore, and the paper's '#'
// (as in D#) and '@' (OID columns) inside identifiers.
func isIdentRune(r rune, first bool) bool {
	if unicode.IsLetter(r) || r == '_' || r == '@' {
		return true
	}
	if first {
		return false
	}
	return unicode.IsDigit(r) || r == '#'
}

// lex splits the input into tokens.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	runes := []rune(src)
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case r == '.':
			out = append(out, token{tokDot, ".", i})
			i++
		case r == '*':
			out = append(out, token{tokStar, "*", i})
			i++
		case r == '(':
			out = append(out, token{tokLParen, "(", i})
			i++
		case r == ')':
			out = append(out, token{tokRParen, ")", i})
			i++
		case r == '-':
			if strings.HasPrefix(string(runes[i:]), "-->") {
				out = append(out, token{tokArrow, "-->", i})
				i += 3
			} else if i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
				j := i + 1
				for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
					j++
				}
				out = append(out, token{tokNumber, string(runes[i:j]), i})
				i = j
			} else {
				return nil, fmt.Errorf("lang: unexpected '-' at %d (did you mean -->?)", i)
			}
		case r == '=':
			out = append(out, token{tokCmp, "=", i})
			i++
		case r == '<':
			if i+1 < len(runes) && runes[i+1] == '>' {
				out = append(out, token{tokCmp, "<>", i})
				i += 2
			} else if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, token{tokCmp, "<=", i})
				i += 2
			} else {
				out = append(out, token{tokCmp, "<", i})
				i++
			}
		case r == '>':
			if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, token{tokCmp, ">=", i})
				i += 2
			} else {
				out = append(out, token{tokCmp, ">", i})
				i++
			}
		case r == '\'':
			j := i + 1
			for j < len(runes) && runes[j] != '\'' {
				j++
			}
			if j >= len(runes) {
				return nil, fmt.Errorf("lang: unterminated string at %d", i)
			}
			out = append(out, token{tokString, string(runes[i+1 : j]), i})
			i = j + 1
		case unicode.IsDigit(r):
			j := i
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
				j++
			}
			out = append(out, token{tokNumber, string(runes[i:j]), i})
			i = j
		case isIdentRune(r, true):
			j := i
			for j < len(runes) && isIdentRune(runes[j], false) {
				j++
			}
			out = append(out, token{tokIdent, string(runes[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("lang: unexpected character %q at %d", r, i)
		}
	}
	out = append(out, token{tokEOF, "", len(runes)})
	return out, nil
}
