package lang

import "testing"

// FuzzParse checks the §5 language parser never panics on arbitrary
// input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"Select All From EMPLOYEE",
		"Select All From EMPLOYEE*ChildName, DEPARTMENT Where EMPLOYEE.D# = DEPARTMENT.D#",
		"select all from DEPARTMENT-->Manager-->Audit where DEPARTMENT.Location = 'Zurich'",
		"select all from E*F-->G where E.x > 2.5 and E.y <> 'a'",
		"select",
		"select all from E where E.x =",
		"--",
		"'unterminated",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.From) == 0 {
			t.Fatalf("parsed query without From items: %q", src)
		}
		for _, item := range q.From {
			if item.Base == "" {
				t.Fatalf("from item without base: %q", src)
			}
			_ = item.String()
		}
	})
}
