package lang

import (
	"fmt"
	"strconv"
	"strings"

	"freejoin/internal/core"
	"freejoin/internal/entity"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Translation is the outerjoin-algebra form of a query block, per §5.2:
// every * and --> became an outerjoin with a strong OID-equality
// predicate; Where conjuncts between two variables became join edges, and
// single-variable conjuncts a restriction on top.
type Translation struct {
	// Block is the join/outerjoin tree (the freely reorderable unit).
	Block *expr.Node
	// Expr is Block wrapped in the Where restriction, if any.
	Expr *expr.Node
	// Graph is graph(Block).
	Graph *graph.Graph
	// Analysis is the theorem check of Graph; §5.3 guarantees
	// Analysis.Free for every parsable block.
	Analysis *core.Analysis
	// DB materializes one relation per tuple variable.
	DB expr.DB
}

// Eval evaluates the translated query.
func (t *Translation) Eval() (*relation.Relation, error) { return t.Expr.Eval(t.DB) }

// RestrictEnclosing applies an enclosing-block restriction to the
// translated query (§5.1: attributes derived by * and --> "may be
// restricted in an enclosing query block"). Unlike Where conditions, the
// condition may reference derived variables. It returns a new Translation
// whose Expr carries the extra restriction; combined with core.Simplify,
// a strong restriction over a derived variable converts its introducing
// outerjoin back into a regular join (the §4 rule).
func (t *Translation) RestrictEnclosing(store *entity.Store, src string) (*Translation, error) {
	cond, err := ParseCondition(src)
	if err != nil {
		return nil, err
	}
	pred, err := t.enclosingPredicate(store, cond)
	if err != nil {
		return nil, err
	}
	out := *t
	out.Expr = expr.NewRestrict(t.Expr, pred)
	return &out, nil
}

// enclosingPredicate compiles an enclosing-block condition; any variable
// of the block (base or derived) may appear, and columns are validated
// against the materialized relation schemes.
func (t *Translation) enclosingPredicate(store *entity.Store, cond *Condition) (predicate.Predicate, error) {
	var ops [2]predicate.Term
	for i, o := range []Operand{cond.Left, cond.Right} {
		switch {
		case o.Var != "":
			rel, ok := t.DB[o.Var]
			if !ok {
				return nil, fmt.Errorf("lang: unknown variable %s", o.Var)
			}
			attr := relation.A(o.Var, o.Field)
			if !rel.Scheme().Contains(attr) {
				return nil, fmt.Errorf("lang: variable %s has no column %s", o.Var, o.Field)
			}
			ops[i] = predicate.Col(attr)
		case o.IsNumber:
			if strings.Contains(o.Lit, ".") {
				f, _ := strconv.ParseFloat(o.Lit, 64)
				ops[i] = predicate.Const(relation.Float(f))
			} else {
				n, _ := strconv.ParseInt(o.Lit, 10, 64)
				ops[i] = predicate.Const(relation.Int(n))
			}
		case o.IsString:
			ops[i] = predicate.Const(relation.Str(o.Lit))
		default:
			return nil, fmt.Errorf("lang: bad operand")
		}
	}
	op, err := cmpOpOf(cond.Op)
	if err != nil {
		return nil, err
	}
	return predicate.Cmp(op, ops[0], ops[1]), nil
}

func cmpOpOf(s string) (predicate.CmpOp, error) {
	switch s {
	case "=":
		return predicate.EqOp, nil
	case "<>":
		return predicate.NeOp, nil
	case "<":
		return predicate.LtOp, nil
	case "<=":
		return predicate.LeOp, nil
	case ">":
		return predicate.GtOp, nil
	case ">=":
		return predicate.GeOp, nil
	default:
		return 0, fmt.Errorf("lang: unknown operator %q", s)
	}
}

// Run parses, translates and evaluates a query block in one call.
func Run(store *entity.Store, src string) (*Translation, *relation.Relation, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	tr, err := Translate(store, q)
	if err != nil {
		return nil, nil, err
	}
	out, err := tr.Eval()
	if err != nil {
		return nil, nil, err
	}
	return tr, out, nil
}

// chainVar tracks one variable introduced by a From-item chain.
type chainVar struct {
	name     string
	typeName string
	nested   bool   // introduced by *: a ValueOfField relation
	field    string // the nested field (for column resolution)
}

// Translate compiles a parsed query block against an entity store.
func Translate(store *entity.Store, q *Query) (*Translation, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("lang: empty From list")
	}
	tr := &Translation{DB: expr.DB{}}
	g := graph.New()

	vars := map[string]chainVar{} // by variable name
	baseVars := map[string]bool{}
	type outerEdge struct {
		from, to string
		pred     predicate.Predicate
	}
	var outers []outerEdge

	addVar := func(v chainVar, rel *relation.Relation) error {
		if _, dup := vars[v.name]; dup {
			return fmt.Errorf("lang: tuple variable %s used twice", v.name)
		}
		vars[v.name] = v
		tr.DB[v.name] = rel
		return g.AddNode(v.name)
	}

	for _, item := range q.From {
		// Base relation variable.
		baseRel, err := store.BaseRelation(item.Base, item.Base)
		if err != nil {
			return nil, err
		}
		if err := addVar(chainVar{name: item.Base, typeName: item.Base}, baseRel); err != nil {
			return nil, err
		}
		baseVars[item.Base] = true

		// Steps. A field is resolved against the chain so far, most
		// recent variable first (DEPARTMENT-->Manager-->Audit resolves
		// Audit on DEPARTMENT).
		chain := []chainVar{vars[item.Base]}
		for _, step := range item.Steps {
			owner, ok := resolveField(store, chain, step)
			if !ok {
				return nil, fmt.Errorf("lang: no variable in %s has %s field %s",
					item, step.Kind, step.Field)
			}
			varName := owner.name + "_" + step.Field
			var nv chainVar
			var rel *relation.Relation
			var pred predicate.Predicate
			switch step.Kind {
			case Unnest:
				// OJ[NestedIn(@r, @value)](R, ValueOfField).
				rel, err = store.NestedRelation(owner.typeName, step.Field, varName)
				if err != nil {
					return nil, err
				}
				nv = chainVar{name: varName, typeName: owner.typeName, nested: true, field: step.Field}
				pred = predicate.Eq(
					relation.A(owner.name, entity.OIDColumn),
					relation.A(varName, entity.OwnerColumn))
			case Link:
				// OJ[LinkedTo(@r, @value)](R, DomainOfField).
				target, _ := store.RefTarget(owner.typeName, step.Field)
				rel, err = store.BaseRelation(target, varName)
				if err != nil {
					return nil, err
				}
				nv = chainVar{name: varName, typeName: target}
				pred = predicate.Eq(
					relation.A(owner.name, entity.RefColumn(step.Field)),
					relation.A(varName, entity.OIDColumn))
			}
			if err := addVar(nv, rel); err != nil {
				return nil, err
			}
			if err := g.AddOuterEdge(owner.name, varName, pred); err != nil {
				return nil, err
			}
			outers = append(outers, outerEdge{from: owner.name, to: varName, pred: pred})
			chain = append(chain, nv)
		}
	}

	// Where conjuncts.
	var restrictions []predicate.Predicate
	for _, cond := range q.Where {
		pred, rels, err := condPredicate(store, vars, baseVars, cond)
		if err != nil {
			return nil, err
		}
		switch len(rels) {
		case 1:
			restrictions = append(restrictions, pred)
		case 2:
			if err := g.AddJoinEdge(rels[0], rels[1], pred); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("lang: condition must reference one or two variables")
		}
	}

	if !g.Connected() {
		return nil, fmt.Errorf("lang: query is a Cartesian product (join conditions do not connect the From items)")
	}

	// Build an implementing tree: join core first (base variables in
	// join-reachable order), then outerjoin edges outward.
	block, err := buildTree(g)
	if err != nil {
		return nil, err
	}
	tr.Block = block
	tr.Graph = g
	tr.Analysis = core.AnalyzeGraph(g)
	tr.Expr = block
	if len(restrictions) > 0 {
		tr.Expr = expr.NewRestrict(block, predicate.NewAnd(restrictions...))
	}
	return tr, nil
}

// resolveField finds the chain variable owning a step's field, searching
// the most recent variables first.
func resolveField(store *entity.Store, chain []chainVar, step Step) (chainVar, bool) {
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		if v.nested {
			continue // value relations have no further fields
		}
		switch step.Kind {
		case Unnest:
			if store.HasSetField(v.typeName, step.Field) {
				return v, true
			}
		case Link:
			if _, ok := store.RefTarget(v.typeName, step.Field); ok {
				return v, true
			}
		}
	}
	return chainVar{}, false
}

// condPredicate compiles a Where condition into a predicate and the
// variables it references. Per §5.1, attributes from the right side of *
// and --> cannot appear in the Where list — only base variables may.
func condPredicate(store *entity.Store, vars map[string]chainVar, baseVars map[string]bool, cond Condition) (predicate.Predicate, []string, error) {
	var ops [2]predicate.Term
	seen := map[string]bool{}
	for i, o := range []Operand{cond.Left, cond.Right} {
		switch {
		case o.Var != "":
			v, ok := vars[o.Var]
			if !ok {
				return nil, nil, fmt.Errorf("lang: unknown variable %s", o.Var)
			}
			if !baseVars[o.Var] {
				return nil, nil, fmt.Errorf(
					"lang: attribute %s.%s is derived by * or --> and cannot appear in Where (restrict in an enclosing block)",
					o.Var, o.Field)
			}
			def, err := store.Type(v.typeName)
			if err != nil {
				return nil, nil, err
			}
			if !hasScalar(def, o.Field) {
				return nil, nil, fmt.Errorf("lang: type %s has no scalar field %s", v.typeName, o.Field)
			}
			ops[i] = predicate.Col(relation.A(o.Var, o.Field))
			seen[o.Var] = true
		case o.IsNumber:
			if strings.Contains(o.Lit, ".") {
				f, _ := strconv.ParseFloat(o.Lit, 64)
				ops[i] = predicate.Const(relation.Float(f))
			} else {
				n, _ := strconv.ParseInt(o.Lit, 10, 64)
				ops[i] = predicate.Const(relation.Int(n))
			}
		case o.IsString:
			ops[i] = predicate.Const(relation.Str(o.Lit))
		default:
			return nil, nil, fmt.Errorf("lang: bad operand")
		}
	}
	op, err := cmpOpOf(cond.Op)
	if err != nil {
		return nil, nil, err
	}
	rels := make([]string, 0, 2)
	for v := range seen {
		rels = append(rels, v)
	}
	if len(rels) == 0 {
		return nil, nil, fmt.Errorf("lang: condition references no variable")
	}
	return predicate.Cmp(op, ops[0], ops[1]), rels, nil
}

func hasScalar(def entity.TypeDef, field string) bool {
	if field == entity.OIDColumn {
		return true
	}
	for _, f := range def.Scalars {
		if f == field {
			return true
		}
	}
	return false
}

// buildTree constructs one implementing tree of a connected nice graph:
// grow from the first node, attaching join edges before outerjoin edges,
// always in the direction the edges allow.
func buildTree(g *graph.Graph) (*expr.Node, error) {
	nodes := g.Nodes()
	inTree := map[string]bool{nodes[0]: true}
	tree := expr.NewLeaf(nodes[0])
	for len(inTree) < len(nodes) {
		progress := false
		// Join edges first: collect every join edge between the tree and
		// one outside node, conjoining parallel cut edges.
		for _, cand := range nodes {
			if inTree[cand] {
				continue
			}
			var preds []predicate.Predicate
			ok := true
			for _, e := range g.Edges() {
				if !e.Touches(cand) || !inTree[e.Other(cand)] {
					continue
				}
				if e.Kind != graph.JoinEdge {
					ok = false // outer edge in the cut: postpone
					break
				}
				preds = append(preds, e.Pred)
			}
			if ok && len(preds) > 0 {
				tree = expr.NewJoin(tree, expr.NewLeaf(cand), predicate.NewAnd(preds...))
				inTree[cand] = true
				progress = true
			}
		}
		if progress {
			continue
		}
		// Outer edges outward: from a tree node to an outside node, with
		// no other cut edges to that node.
		for _, e := range g.Edges() {
			if e.Kind != graph.OuterEdge || !inTree[e.U] || inTree[e.V] {
				continue
			}
			single := true
			for _, o := range g.Edges() {
				if o != e && o.Touches(e.V) && inTree[o.Other(e.V)] {
					single = false
					break
				}
			}
			if !single {
				continue
			}
			tree = expr.NewOuter(tree, expr.NewLeaf(e.V), e.Pred)
			inTree[e.V] = true
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("lang: cannot linearize query graph (not a nice query block)")
		}
	}
	return tree, nil
}
