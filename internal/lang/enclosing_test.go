package lang

import (
	"strings"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/relation"
)

// TestEnclosingRestriction: §5.1 forbids derived attributes in the block's
// own Where but allows them "in an enclosing query block"; the enclosing
// restriction then drives the §4 simplification, converting the
// unnesting outerjoin back into a join.
func TestEnclosingRestriction(t *testing.T) {
	s := paperStore(t)
	q, err := Parse("Select All From EMPLOYEE*ChildName")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(s, q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := tr.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// 3 employees: ana with 2 children, cruz with 1, bo childless (null).
	if base.Len() != 4 {
		t.Fatalf("base rows = %d:\n%v", base.Len(), base)
	}

	restricted, err := tr.RestrictEnclosing(s, "EMPLOYEE_ChildName.ChildName = 'kim'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := restricted.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("restricted rows = %d:\n%v", out.Len(), out)
	}
	if v, _ := out.Row(0).Get(relation.A("EMPLOYEE", "Name")); v != relation.Str("ana") {
		t.Errorf("restricted row = %v", out.Row(0))
	}

	// The strong restriction over the derived (null-supplied) variable
	// lets §4 convert the unnesting outerjoin into a join.
	simplified, n := core.Simplify(restricted.Expr, core.SimplifyOptions{})
	if n != 1 {
		t.Fatalf("conversions = %d:\n%s", n, restricted.Expr.StringWithPreds())
	}
	if !strings.Contains(simplified.String(), "- EMPLOYEE_ChildName") {
		t.Errorf("outerjoin not converted: %s", simplified)
	}
	// Semantics preserved.
	after, err := simplified.Eval(restricted.DB)
	if err != nil {
		t.Fatal(err)
	}
	if !after.EqualBag(out) {
		t.Fatal("simplification changed the enclosing-block result")
	}
}

func TestEnclosingRestrictionErrors(t *testing.T) {
	s := paperStore(t)
	q, _ := Parse("Select All From EMPLOYEE*ChildName")
	tr, err := Translate(s, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"NOPE.x = 1",
		"EMPLOYEE.Nope = 1",
		"EMPLOYEE_ChildName.Nope = 1",
		"EMPLOYEE.Rank",
		"EMPLOYEE.Rank = ",
		"1 = ",
	} {
		if _, err := tr.RestrictEnclosing(s, bad); err == nil {
			t.Errorf("RestrictEnclosing(%q) should fail", bad)
		}
	}
	// Constant-only condition is allowed at this level (it restricts
	// nothing variable-specific but is well-formed).
	if _, err := tr.RestrictEnclosing(s, "1 = 1"); err != nil {
		t.Errorf("constant condition should parse: %v", err)
	}
}

func TestParseConditionStandalone(t *testing.T) {
	c, err := ParseCondition("E.x >= 2.5")
	if err != nil || c.Op != ">=" || c.Left.Var != "E" || !c.Right.IsNumber {
		t.Fatalf("ParseCondition = %+v, %v", c, err)
	}
	if _, err := ParseCondition("E.x = 1 extra"); err == nil {
		t.Error("trailing input must fail")
	}
	if _, err := ParseCondition("= 1"); err == nil {
		t.Error("missing left operand must fail")
	}
}

// TestEnclosingRestrictionStillEvaluable double-checks that the enclosing
// restriction composes with string/float literals and derived link
// variables.
func TestEnclosingRestrictionOnLinkedVariable(t *testing.T) {
	s := paperStore(t)
	q, _ := Parse("Select All From DEPARTMENT-->Manager")
	tr, err := Translate(s, q)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := tr.RestrictEnclosing(s, "DEPARTMENT_Manager.Rank > 11")
	if err != nil {
		t.Fatal(err)
	}
	out, err := restricted.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// Only ana (rank 12) manages a department.
	if out.Len() != 1 {
		t.Fatalf("rows = %d:\n%v", out.Len(), out)
	}
}
