package lang_test

import (
	"fmt"
	"log"

	"freejoin/internal/entity"
	"freejoin/internal/lang"
	"freejoin/internal/relation"
)

// The §5 language end to end: UnNest compiles to an outerjoin over the
// ValueOfField view, and the block is freely reorderable.
func Example() {
	store := entity.NewStore()
	if err := store.Define(entity.TypeDef{
		Name:    "EMPLOYEE",
		Scalars: []string{"Name", "D#"},
		Sets:    []string{"ChildName"},
	}); err != nil {
		log.Fatal(err)
	}
	ana, _ := store.New("EMPLOYEE", map[string]relation.Value{
		"Name": relation.Str("ana"), "D#": relation.Int(1)})
	_ = store.AddToSet(ana, "ChildName", relation.Str("kim"))
	if _, err := store.New("EMPLOYEE", map[string]relation.Value{
		"Name": relation.Str("bo"), "D#": relation.Int(1)}); err != nil {
		log.Fatal(err)
	}

	tr, out, err := lang.Run(store, "Select All From EMPLOYEE*ChildName")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("block:", tr.Block)
	fmt.Println("freely reorderable:", tr.Analysis.Free)
	fmt.Println("rows:", out.Len()) // ana+kim, bo+null
	// Output:
	// block: (EMPLOYEE -> EMPLOYEE_ChildName)
	// freely reorderable: true
	// rows: 2
}
