package pprofparse

import "fmt"

// The protobuf walker. profile.proto field numbers (stable since the
// format was published):
//
//	Profile:  1 sample_type (ValueType)   4 location (Location)
//	          2 sample (Sample)           5 function (Function)
//	          6 string_table (string)    10 duration_nanos
//	         12 period
//	ValueType: 1 type*  2 unit*                     (* = string index)
//	Sample:    1 location_id (repeated uint64)  2 value (repeated int64)
//	           3 label (Label)
//	Label:     1 key*  2 str*  3 num
//	Location:  1 id  4 line (Line)
//	Line:      1 function_id  2 line
//	Function:  1 id  2 name*
//
// Repeated scalars arrive packed (one length-delimited field) or
// unpacked (one varint field per element); both are handled.

// pbuf is a protobuf wire-format cursor over one message's bytes.
type pbuf struct {
	data []byte
	pos  int
}

func (b *pbuf) done() bool { return b.pos >= len(b.data) }

func (b *pbuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if b.pos >= len(b.data) {
			return 0, fmt.Errorf("pprofparse: truncated varint")
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("pprofparse: varint overflow")
		}
	}
}

// field reads one field tag and returns (fieldNumber, wireType).
func (b *pbuf) field() (int, int, error) {
	tag, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads one length-delimited payload.
func (b *pbuf) bytes() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, fmt.Errorf("pprofparse: truncated bytes field")
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip discards one field of the given wire type.
func (b *pbuf) skip(wire int) error {
	switch wire {
	case 0: // varint
		_, err := b.varint()
		return err
	case 1: // fixed64
		if len(b.data)-b.pos < 8 {
			return fmt.Errorf("pprofparse: truncated fixed64")
		}
		b.pos += 8
		return nil
	case 2: // length-delimited
		_, err := b.bytes()
		return err
	case 5: // fixed32
		if len(b.data)-b.pos < 4 {
			return fmt.Errorf("pprofparse: truncated fixed32")
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("pprofparse: unsupported wire type %d", wire)
	}
}

// repeatedUint64 appends elements of a repeated uint64/int64 field,
// handling both packed (wire 2) and unpacked (wire 0) encodings.
func repeatedUint64(b *pbuf, wire int, dst []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := b.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	payload, err := b.bytes()
	if err != nil {
		return nil, err
	}
	pb := &pbuf{data: payload}
	for !pb.done() {
		v, err := pb.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rawSample / rawLabel / rawLocation hold the ID-based form before the
// string and function tables are resolved.
type rawSample struct {
	locIDs []uint64
	values []uint64
	labels []rawLabel
}

type rawLabel struct {
	key, str uint64
	num      int64
}

type rawLocation struct {
	id    uint64
	fnIDs []uint64 // from Line messages, leaf order as encoded
}

func parseProto(data []byte) (*Profile, error) {
	var (
		strtab   []string
		types    []ValueType
		rawTypes [][2]uint64
		samples  []rawSample
		locs     = map[uint64][]uint64{} // location id -> function ids
		fns      = map[uint64]uint64{}   // function id -> name string index
		prof     = &Profile{}
	)

	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			rawTypes = append(rawTypes, vt)
		case 2: // sample
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			locs[loc.id] = loc.fnIDs
		case 5: // function
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			fns[id] = name
		case 6: // string_table
			s, err := b.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		case 10: // duration_nanos
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			prof.DurationNanos = int64(v)
		case 12: // period
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			prof.Period = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range rawTypes {
		types = append(types, ValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	prof.SampleTypes = types
	for _, rs := range samples {
		s := Sample{Values: make([]int64, len(rs.values))}
		for i, v := range rs.values {
			s.Values[i] = int64(v)
		}
		for _, l := range rs.labels {
			k := str(l.key)
			if k == "" {
				continue
			}
			if l.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[k] = str(l.str)
			} else {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[k] = l.num
			}
		}
		// Stack: sample location_ids are leaf first; each location's Line
		// entries are innermost (inlined callee) first.
		for _, lid := range rs.locIDs {
			for _, fid := range locs[lid] {
				if name := str(fns[fid]); name != "" {
					s.Stack = append(s.Stack, name)
				}
			}
		}
		prof.Samples = append(prof.Samples, s)
	}
	return prof, nil
}

func parseValueType(data []byte) ([2]uint64, error) {
	var vt [2]uint64
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1, 2:
			v, err := b.varint()
			if err != nil {
				return vt, err
			}
			vt[num-1] = v
		default:
			if err := b.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locIDs, err = repeatedUint64(b, wire, s.locIDs); err != nil {
				return s, err
			}
		case 2:
			if s.values, err = repeatedUint64(b, wire, s.values); err != nil {
				return s, err
			}
		case 3:
			msg, err := b.bytes()
			if err != nil {
				return s, err
			}
			l, err := parseLabel(msg)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(data []byte) (rawLabel, error) {
	var l rawLabel
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1, 2, 3:
			v, err := b.varint()
			if err != nil {
				return l, err
			}
			switch num {
			case 1:
				l.key = v
			case 2:
				l.str = v
			case 3:
				l.num = int64(v)
			}
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLocation(data []byte) (rawLocation, error) {
	var loc rawLocation
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1:
			v, err := b.varint()
			if err != nil {
				return loc, err
			}
			loc.id = v
		case 4:
			msg, err := b.bytes()
			if err != nil {
				return loc, err
			}
			fid, err := parseLine(msg)
			if err != nil {
				return loc, err
			}
			loc.fnIDs = append(loc.fnIDs, fid)
		default:
			if err := b.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func parseLine(data []byte) (uint64, error) {
	var fid uint64
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return 0, err
		}
		if num == 1 {
			if fid, err = b.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := b.skip(wire); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

func parseFunction(data []byte) (id, name uint64, err error) {
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			if id, err = b.varint(); err != nil {
				return 0, 0, err
			}
		case 2:
			if name, err = b.varint(); err != nil {
				return 0, 0, err
			}
		default:
			if err := b.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}
