// Package pprofparse is a dependency-free reader for the pprof profile
// format (gzip-compressed protobuf, as served by /debug/pprof/profile
// and written by `go test -cpuprofile`). It decodes just enough of the
// proto — sample types, samples with their label sets, and the
// location→function tables — to answer the two questions the repo's
// profiling layer asks:
//
//   - attribution by code: which functions burn the most CPU/allocations
//     (TopFunctions, the `make profile` hit list for ROADMAP item 1), and
//   - attribution by query: how do samples split across the pprof labels
//     the executor sets (ByLabel over query_id / fingerprint / strategy).
//
// The decoder is a hand-rolled protobuf walker: profile.proto's field
// numbers are stable and documented, the messages involved are shallow,
// and depending on github.com/google/pprof for two aggregations would
// drag in a vendored tree. Unknown fields are skipped, so profiles from
// newer Go versions parse fine.
package pprofparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
)

// ValueType names one sample dimension, e.g. {Type: "cpu", Unit:
// "nanoseconds"} or {Type: "alloc_space", Unit: "bytes"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: its values (one per sample type), the
// string and numeric pprof labels attached to it, and the stack as
// function names, leaf first.
type Sample struct {
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
	Stack     []string
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	DurationNanos int64
	Period        int64
}

// Parse decodes a pprof profile from r, transparently un-gzipping
// (profiles are gzipped on the wire, but a raw proto also parses).
func Parse(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pprofparse: read: %w", err)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprofparse: gzip: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("pprofparse: gunzip: %w", err)
		}
	}
	return parseProto(data)
}

// ParseFile decodes the profile at path.
func ParseFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Index returns the position of the named sample type in each sample's
// Values ("cpu", "alloc_space", ...), or -1 when absent.
func (p *Profile) Index(sampleType string) int {
	for i, st := range p.SampleTypes {
		if st.Type == sampleType {
			return i
		}
	}
	return -1
}

// Total sums value index vi across all samples.
func (p *Profile) Total(vi int) int64 {
	var t int64
	for _, s := range p.Samples {
		if vi < len(s.Values) {
			t += s.Values[vi]
		}
	}
	return t
}

// Entry is one row of a top-N report: a function's flat value (samples
// with it as the leaf) and cumulative value (samples with it anywhere
// on the stack).
type Entry struct {
	Name string `json:"name"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// TopFunctions aggregates value index vi by function and returns the
// top n entries by flat value (ties broken by cumulative, then name for
// determinism). n <= 0 returns all.
func (p *Profile) TopFunctions(vi, n int) []Entry {
	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range p.Samples {
		if vi >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		v := s.Values[vi]
		flat[s.Stack[0]] += v
		seen := map[string]bool{}
		for _, fn := range s.Stack {
			if !seen[fn] { // recursion: count each frame once per stack
				seen[fn] = true
				cum[fn] += v
			}
		}
	}
	out := make([]Entry, 0, len(cum))
	for name, c := range cum {
		out = append(out, Entry{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ByLabel sums value index vi per distinct value of the string label
// key; samples without the label are summed under "" so callers can see
// the unattributed remainder.
func (p *Profile) ByLabel(key string, vi int) map[string]int64 {
	out := map[string]int64{}
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		out[s.Labels[key]] += s.Values[vi]
	}
	return out
}

// LabelValues returns the distinct values of the string label key,
// sorted.
func (p *Profile) LabelValues(key string) []string {
	set := map[string]bool{}
	for _, s := range p.Samples {
		if v, ok := s.Labels[key]; ok {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
