package pprofparse

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// burn spins the CPU for roughly d so the profiler has samples to take.
// The sink defeats dead-code elimination.
var sink int

func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			sink += i * i
		}
	}
}

// TestParseCPUProfileRoundTrip captures a real CPU profile with labeled
// work and checks the parser recovers sample types, stacks, and the
// pprof labels — the exact shape the query server produces.
func TestParseCPUProfileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels("query_id", "42", "fingerprint", "deadbeef"),
		func(context.Context) { burn(300 * time.Millisecond) })
	burn(100 * time.Millisecond) // unlabeled remainder
	pprof.StopCPUProfile()

	p, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatal("no sample types decoded")
	}
	vi := p.Index("cpu")
	if vi < 0 {
		t.Fatalf("no cpu sample type in %v", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Skip("profiler took no samples (starved CI); nothing to assert")
	}

	// Stacks must resolve to function names, and the busy loop should be
	// visible in the top-N report.
	top := p.TopFunctions(vi, 10)
	if len(top) == 0 {
		t.Fatal("TopFunctions returned nothing")
	}
	foundBurn := false
	for _, e := range top {
		if e.Name == "" {
			t.Fatal("entry with empty function name")
		}
		if e.Cum < e.Flat {
			t.Fatalf("cum %d < flat %d for %s", e.Cum, e.Flat, e.Name)
		}
		if e.Name == "freejoin/internal/pprofparse.burn" {
			foundBurn = true
		}
	}
	if !foundBurn {
		t.Errorf("burn not in top functions: %+v", top)
	}

	// The labeled span must be attributed to query_id=42.
	byQ := p.ByLabel("query_id", vi)
	if byQ["42"] == 0 {
		t.Errorf("no CPU attributed to query_id=42: %v", byQ)
	}
	if got := p.LabelValues("query_id"); len(got) != 1 || got[0] != "42" {
		t.Errorf("LabelValues(query_id) = %v, want [42]", got)
	}
	byF := p.ByLabel("fingerprint", vi)
	if byF["deadbeef"] == 0 {
		t.Errorf("no CPU attributed to fingerprint=deadbeef: %v", byF)
	}
	if p.Total(vi) <= 0 {
		t.Errorf("Total(%d) = %d, want > 0", vi, p.Total(vi))
	}
}

// TestParseRejectsGarbage checks truncated/corrupt input errors instead
// of panicking.
func TestParseRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		{0x08},             // truncated varint field
		{0x12, 0xff, 0x01}, // length longer than payload
		{0xfd, 0x01},       // wire type 5 with no payload
	} {
		if _, err := Parse(bytes.NewReader(in)); err == nil {
			t.Errorf("Parse(%x) succeeded, want error", in)
		}
	}
	// Empty profile is valid (no fields at all).
	p, err := Parse(bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("Parse(empty): %v", err)
	}
	if len(p.Samples) != 0 || len(p.SampleTypes) != 0 {
		t.Fatalf("empty profile decoded to %+v", p)
	}
}
