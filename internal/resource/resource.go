// Package resource is the executor's resource-governance layer:
// cancellation, deadlines and memory budgets. It exists below both
// internal/exec and internal/storage (which must not import each other's
// governed types), so the ExecContext threaded through every operator's
// Open, the Governor enforcing budgets, and the typed ResourceError all
// live here. Package exec re-exports them under aliases.
//
// The paper's Example 1 motivates the layer: a bad implementing tree
// retrieves 2·10⁷+1 tuples where a good one retrieves 3. A cost model
// usually steers the engine away from the bad tree, but when estimates
// are wrong the engine must survive it — a runaway plan has to be
// cancellable, deadline-bounded, and stopped before it materializes an
// unbounded intermediate result.
package resource

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"freejoin/internal/obs"
)

// Kind classifies a ResourceError.
type Kind uint8

// Resource error kinds.
const (
	// Cancelled: the execution context was cancelled.
	Cancelled Kind = iota + 1
	// DeadlineExceeded: the execution deadline passed.
	DeadlineExceeded
	// MemoryExceeded: a governor memory budget (rows or bytes) tripped.
	MemoryExceeded
	// SpillExceeded: the governor's spill-bytes budget tripped — the
	// execution already moved to disk and the disk budget ran out too.
	SpillExceeded
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Cancelled:
		return "cancelled"
	case DeadlineExceeded:
		return "deadline exceeded"
	case MemoryExceeded:
		return "memory budget exceeded"
	case SpillExceeded:
		return "spill budget exceeded"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ResourceError is the typed error a governed execution returns when a
// limit trips. Operator is the operator type that tripped ("hashjoin",
// "sort", ...); Node, when instrumentation is attached, is the plan-node
// label of the tripping operator (filled in by the innermost
// exec.Instrumented wrapper the error crosses).
type ResourceError struct {
	Kind     Kind
	Operator string
	Node     string

	// Memory accounting at the moment of the trip (MemoryExceeded only).
	UsedRows, LimitRows   int64
	UsedBytes, LimitBytes int64

	// Err is the underlying cause (the context error for Cancelled and
	// DeadlineExceeded); may be nil for memory trips.
	Err error
}

// Error implements error.
func (e *ResourceError) Error() string {
	msg := e.Kind.String()
	if e.Operator != "" {
		msg += " in " + e.Operator
	}
	if e.Node != "" {
		msg += fmt.Sprintf(" (plan node %q)", e.Node)
	}
	if e.Kind == MemoryExceeded {
		if e.LimitRows > 0 {
			msg += fmt.Sprintf(": %d rows held, limit %d rows", e.UsedRows, e.LimitRows)
		}
		if e.LimitBytes > 0 {
			msg += fmt.Sprintf(": %d bytes held, limit %d bytes", e.UsedBytes, e.LimitBytes)
		}
	}
	if e.Kind == SpillExceeded && e.LimitBytes > 0 {
		msg += fmt.Sprintf(": %d spill bytes held, limit %d bytes", e.UsedBytes, e.LimitBytes)
	}
	return "resource: " + msg
}

// Unwrap returns the underlying cause, letting errors.Is see
// context.Canceled / context.DeadlineExceeded through the typed wrapper.
func (e *ResourceError) Unwrap() error { return e.Err }

// Governor enforces a memory budget over the rows the executor holds
// materialized at once (sort buffers, hash tables, join inputs). Limits
// may be expressed in rows, bytes, or both; zero means unlimited.
// Reservations are accounted with atomics so ParallelHashJoin workers can
// charge concurrently, and trips plus graceful degradations are recorded
// as events for EXPLAIN ANALYZE.
type Governor struct {
	limitRows  int64
	limitBytes int64
	limitSpill int64

	usedRows  atomic.Int64
	usedBytes atomic.Int64
	usedSpill atomic.Int64

	mu     sync.Mutex
	events []string
}

// NewGovernor returns a governor with the given budgets; zero disables
// the corresponding limit. A nil *Governor is valid and unlimited.
func NewGovernor(limitRows, limitBytes int64) *Governor {
	return &Governor{limitRows: limitRows, limitBytes: limitBytes}
}

// Limits returns the configured budgets (rows, bytes); zero = unlimited.
func (g *Governor) Limits() (int64, int64) {
	if g == nil {
		return 0, 0
	}
	return g.limitRows, g.limitBytes
}

// Reserve charges rows/bytes against the budget on behalf of op. When
// the charge would exceed a limit it is rolled back and a MemoryExceeded
// error describing the trip is returned. Reserve on a nil governor is a
// no-op.
func (g *Governor) Reserve(op string, rows, bytes int64) *ResourceError {
	if g == nil {
		return nil
	}
	ur := g.usedRows.Add(rows)
	ub := g.usedBytes.Add(bytes)
	if (g.limitRows > 0 && ur > g.limitRows) || (g.limitBytes > 0 && ub > g.limitBytes) {
		subClamped(&g.usedRows, rows)
		subClamped(&g.usedBytes, bytes)
		e := &ResourceError{
			Kind: MemoryExceeded, Operator: op,
			UsedRows: ur, LimitRows: g.limitRows,
			UsedBytes: ub, LimitBytes: g.limitBytes,
		}
		g.Note(e.Error())
		obs.GovernorTripsMemory.Inc()
		return e
	}
	return nil
}

// Release returns previously reserved rows/bytes to the budget. Release
// on a nil governor is a no-op.
//
// The counters clamp at zero: a double release — a re-Open after a trip
// racing a concurrent cancellation's unwind through the same operator —
// must not drive `used` negative, which would mint free budget for every
// other query sharing the governor's pool.
func (g *Governor) Release(rows, bytes int64) {
	if g == nil {
		return
	}
	subClamped(&g.usedRows, rows)
	subClamped(&g.usedBytes, bytes)
}

// subClamped subtracts n from c, flooring at zero (CAS loop so
// concurrent releases cannot jointly underflow).
func subClamped(c *atomic.Int64, n int64) {
	for {
		cur := c.Load()
		next := cur - n
		if next < 0 {
			next = 0
		}
		if c.CompareAndSwap(cur, next) {
			return
		}
	}
}

// SetSpillLimit configures the spill-bytes budget: the total size of the
// run files a spilling execution may hold on disk at once. Zero (the
// default) disables the limit. Call before execution starts; the limit
// is not synchronized against concurrent reservations.
func (g *Governor) SetSpillLimit(bytes int64) {
	if g != nil {
		g.limitSpill = bytes
	}
}

// SpillLimit returns the configured spill-bytes budget; zero = unlimited.
func (g *Governor) SpillLimit() int64 {
	if g == nil {
		return 0
	}
	return g.limitSpill
}

// ReserveSpill charges bytes of spill-file space on behalf of op. When
// the charge would exceed the spill budget it is rolled back and a
// SpillExceeded error is returned. Nil-safe.
func (g *Governor) ReserveSpill(op string, bytes int64) *ResourceError {
	if g == nil {
		return nil
	}
	ub := g.usedSpill.Add(bytes)
	if g.limitSpill > 0 && ub > g.limitSpill {
		subClamped(&g.usedSpill, bytes)
		e := &ResourceError{
			Kind: SpillExceeded, Operator: op,
			UsedBytes: ub, LimitBytes: g.limitSpill,
		}
		g.Note(e.Error())
		obs.GovernorTripsSpill.Inc()
		return e
	}
	return nil
}

// ReleaseSpill returns previously reserved spill bytes (a dropped run
// file) to the budget, clamping at zero like Release. Nil-safe.
func (g *Governor) ReleaseSpill(bytes int64) {
	if g == nil {
		return
	}
	subClamped(&g.usedSpill, bytes)
}

// UsedSpillBytes returns the spill-file bytes currently reserved.
func (g *Governor) UsedSpillBytes() int64 {
	if g == nil {
		return 0
	}
	return g.usedSpill.Load()
}

// UsedRows returns the rows currently reserved.
func (g *Governor) UsedRows() int64 {
	if g == nil {
		return 0
	}
	return g.usedRows.Load()
}

// UsedBytes returns the bytes currently reserved.
func (g *Governor) UsedBytes() int64 {
	if g == nil {
		return 0
	}
	return g.usedBytes.Load()
}

// Note records a governance event (a trip, a graceful degradation) for
// later rendering by EXPLAIN ANALYZE. Nil-safe.
func (g *Governor) Note(event string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.events = append(g.events, event)
	g.mu.Unlock()
}

// Events returns a copy of the recorded events, in order.
func (g *Governor) Events() []string {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.events...)
}

// Spill defaults, applied when the corresponding SpillConfig field is
// zero.
const (
	// DefaultSpillRecursion bounds grace-hash re-partitioning depth; a
	// partition that still cannot fit after this many re-partitionings is
	// processed by a streaming block-nested scan of its run files instead.
	DefaultSpillRecursion = 4
	// DefaultSpillPartitions is the grace-hash partitioning fanout.
	DefaultSpillPartitions = 8
)

// SpillConfig enables and parameterizes spill-to-disk execution. A nil
// *SpillConfig (the ExecContext default) means spilling is disabled and
// a memory-budget trip aborts or degrades as before.
type SpillConfig struct {
	// Dir is the directory spill run files are created in; empty means
	// os.TempDir().
	Dir string
	// MaxRecursion bounds grace-hash re-partitioning depth; zero means
	// DefaultSpillRecursion.
	MaxRecursion int
	// Partitions is the grace-hash fanout; zero means
	// DefaultSpillPartitions.
	Partitions int
}

// Directory resolves the spill directory, defaulting to os.TempDir().
// Nil-safe.
func (c *SpillConfig) Directory() string {
	if c == nil || c.Dir == "" {
		return os.TempDir()
	}
	return c.Dir
}

// Recursion resolves the grace-hash re-partitioning bound. Nil-safe.
func (c *SpillConfig) Recursion() int {
	if c == nil || c.MaxRecursion <= 0 {
		return DefaultSpillRecursion
	}
	return c.MaxRecursion
}

// Fanout resolves the grace-hash partition count. Nil-safe.
func (c *SpillConfig) Fanout() int {
	if c == nil || c.Partitions <= 1 {
		return DefaultSpillPartitions
	}
	return c.Partitions
}

// ExecContext carries the per-execution governance state through every
// operator's Open: a context.Context for cancellation and deadlines plus
// an optional Governor for memory budgets. A nil *ExecContext is valid
// everywhere and means "ungoverned" — every method has a nil-safe fast
// path, preserving the zero-cost uninstrumented execution path.
type ExecContext struct {
	ctx   context.Context
	gov   *Governor
	spill *SpillConfig

	// batchRows, when positive, overrides the batch size of every batch
	// operator opened under this context (the session's `set batch_size`).
	// Zero means "use the operator's configured size".
	batchRows int

	// tripNoted dedupes the metrics hook: a cancelled or expired context
	// surfaces through every operator the abort unwinds past, and each
	// Err call mints a fresh ResourceError; the process-wide trip counter
	// should advance once per execution, not once per operator.
	tripNoted atomic.Bool
}

// NewContext builds an execution context; ctx may be nil (Background)
// and gov may be nil (no memory budget).
func NewContext(ctx context.Context, gov *Governor) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx, gov: gov}
}

// Context returns the carried context (context.Background for a nil or
// context-less ExecContext).
func (ec *ExecContext) Context() context.Context {
	if ec == nil || ec.ctx == nil {
		return context.Background()
	}
	return ec.ctx
}

// Governor returns the carried governor (nil when ungoverned).
func (ec *ExecContext) Governor() *Governor {
	if ec == nil {
		return nil
	}
	return ec.gov
}

// EnableSpill turns on spill-to-disk execution for this context. The
// config is copied; call before execution starts.
func (ec *ExecContext) EnableSpill(cfg SpillConfig) {
	if ec != nil {
		c := cfg
		ec.spill = &c
	}
}

// Spill returns the context's spill configuration, or nil when spilling
// is disabled (including on a nil context).
func (ec *ExecContext) Spill() *SpillConfig {
	if ec == nil {
		return nil
	}
	return ec.spill
}

// SetBatchRows sets the per-execution batch size override; n <= 0
// clears it. Call before execution starts.
func (ec *ExecContext) SetBatchRows(n int) {
	if ec != nil {
		if n < 0 {
			n = 0
		}
		ec.batchRows = n
	}
}

// BatchRows returns the execution's batch-size override, or 0 when none
// is set (including on a nil context).
func (ec *ExecContext) BatchRows() int {
	if ec == nil {
		return 0
	}
	return ec.batchRows
}

// Err reports whether the context has been cancelled or its deadline has
// passed, typed as a ResourceError attributed to op. It returns an
// untyped nil interface when execution may proceed.
func (ec *ExecContext) Err(op string) error {
	if ec == nil || ec.ctx == nil {
		return nil
	}
	switch err := ec.ctx.Err(); err {
	case nil:
		return nil
	case context.DeadlineExceeded:
		ec.noteTrip(obs.GovernorTripsDeadln)
		return &ResourceError{Kind: DeadlineExceeded, Operator: op, Err: err}
	default:
		ec.noteTrip(obs.GovernorTripsCancel)
		return &ResourceError{Kind: Cancelled, Operator: op, Err: err}
	}
}

// noteTrip advances a trip counter at most once for this execution.
func (ec *ExecContext) noteTrip(c *obs.Counter) {
	if !ec.tripNoted.Swap(true) {
		c.Inc()
	}
}

// Reserve charges the governor on behalf of op, returning an untyped nil
// interface when the charge fits (or no governor is attached).
func (ec *ExecContext) Reserve(op string, rows, bytes int64) error {
	if ec == nil || ec.gov == nil {
		return nil
	}
	if e := ec.gov.Reserve(op, rows, bytes); e != nil {
		return e
	}
	return nil
}

// Release returns a prior reservation to the governor. Nil-safe.
func (ec *ExecContext) Release(rows, bytes int64) {
	if ec == nil {
		return
	}
	ec.gov.Release(rows, bytes)
}

// ReserveSpill charges spill-file bytes on behalf of op, returning an
// untyped nil interface when the charge fits (or no governor is
// attached).
func (ec *ExecContext) ReserveSpill(op string, bytes int64) error {
	if ec == nil || ec.gov == nil {
		return nil
	}
	if e := ec.gov.ReserveSpill(op, bytes); e != nil {
		return e
	}
	return nil
}

// ReleaseSpill returns previously reserved spill bytes. Nil-safe.
func (ec *ExecContext) ReleaseSpill(bytes int64) {
	if ec == nil {
		return
	}
	ec.gov.ReleaseSpill(bytes)
}
