package resource

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGovernorRowBudget(t *testing.T) {
	g := NewGovernor(2, 0)
	if err := g.Reserve("op", 2, 100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.Reserve("op", 1, 50)
	if err == nil {
		t.Fatal("third row must trip the 2-row budget")
	}
	if err.Kind != MemoryExceeded || err.Operator != "op" {
		t.Errorf("trip = %+v", err)
	}
	// The failed reservation must be rolled back.
	if g.UsedRows() != 2 || g.UsedBytes() != 100 {
		t.Errorf("after rollback: rows=%d bytes=%d", g.UsedRows(), g.UsedBytes())
	}
	g.Release(2, 100)
	if g.UsedRows() != 0 || g.UsedBytes() != 0 {
		t.Errorf("after release: rows=%d bytes=%d", g.UsedRows(), g.UsedBytes())
	}
	if evs := g.Events(); len(evs) != 1 || !strings.Contains(evs[0], "memory budget exceeded") {
		t.Errorf("events = %v", evs)
	}
}

func TestGovernorByteBudget(t *testing.T) {
	g := NewGovernor(0, 1000)
	if err := g.Reserve("sort", 1, 999); err != nil {
		t.Fatal(err)
	}
	err := g.Reserve("sort", 1, 2)
	if err == nil || err.Kind != MemoryExceeded {
		t.Fatalf("byte trip = %v", err)
	}
	if !strings.Contains(err.Error(), "limit 1000 bytes") {
		t.Errorf("message: %v", err)
	}
}

func TestGovernorConcurrentReserve(t *testing.T) {
	g := NewGovernor(0, 0) // unlimited: pure accounting
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := g.Reserve("w", 1, 10); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if g.UsedRows() != 8000 || g.UsedBytes() != 80000 {
		t.Errorf("concurrent accounting: rows=%d bytes=%d", g.UsedRows(), g.UsedBytes())
	}
}

func TestNilGovernorIsUnlimited(t *testing.T) {
	var g *Governor
	if err := g.Reserve("op", 1<<40, 1<<50); err != nil {
		t.Fatal(err)
	}
	g.Release(1, 1)
	g.Note("ignored")
	if g.UsedRows() != 0 || g.Events() != nil {
		t.Error("nil governor must be inert")
	}
	lr, lb := g.Limits()
	if lr != 0 || lb != 0 {
		t.Error("nil governor limits must be unlimited")
	}
}

func TestExecContextErr(t *testing.T) {
	var nilEC *ExecContext
	if err := nilEC.Err("op"); err != nil {
		t.Fatal("nil ExecContext must never report an error")
	}
	if err := nilEC.Reserve("op", 1, 1); err != nil {
		t.Fatal("nil ExecContext reserve must be a no-op")
	}
	nilEC.Release(1, 1)

	ctx, cancel := context.WithCancel(context.Background())
	ec := NewContext(ctx, nil)
	if err := ec.Err("scan"); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	err := ec.Err("scan")
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != Cancelled || re.Operator != "scan" {
		t.Fatalf("cancelled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Unwrap must expose context.Canceled")
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	err = NewContext(dctx, nil).Err("join")
	if !errors.As(err, &re) || re.Kind != DeadlineExceeded {
		t.Fatalf("deadline: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("Unwrap must expose context.DeadlineExceeded")
	}
}

// The Reserve/Err helpers must return untyped nils: a nil *ResourceError
// boxed into error would compare non-nil and break every caller.
func TestNoTypedNil(t *testing.T) {
	ec := NewContext(context.Background(), NewGovernor(10, 0))
	if err := ec.Reserve("op", 1, 1); err != nil {
		t.Fatalf("Reserve returned %#v, want untyped nil", err)
	}
	if err := ec.Err("op"); err != nil {
		t.Fatalf("Err returned %#v, want untyped nil", err)
	}
}

func TestResourceErrorMessage(t *testing.T) {
	e := &ResourceError{Kind: MemoryExceeded, Operator: "hashjoin", Node: "join [hash] on R.k = S.k",
		UsedRows: 11, LimitRows: 10}
	msg := e.Error()
	for _, want := range []string{"memory budget exceeded", "hashjoin", `plan node "join [hash] on R.k = S.k"`, "11 rows held, limit 10"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if (&ResourceError{Kind: Cancelled}).Error() != "resource: cancelled" {
		t.Errorf("bare message = %q", (&ResourceError{Kind: Cancelled}).Error())
	}
}

// A double release (re-Open after a trip racing a concurrent
// cancellation's unwind) must clamp at zero, not mint negative usage
// that would hand free budget to other queries sharing the governor.
func TestGovernorDoubleReleaseClamps(t *testing.T) {
	g := NewGovernor(10, 1000)
	if err := g.Reserve("op", 4, 400); err != nil {
		t.Fatal(err)
	}
	g.Release(4, 400)
	g.Release(4, 400) // the bug: drove used to -4 rows / -400 bytes
	if r, b := g.UsedRows(), g.UsedBytes(); r != 0 || b != 0 {
		t.Fatalf("after double release used = (%d rows, %d bytes); want (0, 0)", r, b)
	}
	// The budget must still enforce the true limit: 10 rows fit, 11 trip.
	if err := g.Reserve("op", 10, 0); err != nil {
		t.Fatalf("10 rows must fit a 10-row budget after clamp: %v", err)
	}
	if err := g.Reserve("op", 1, 0); err == nil {
		t.Fatal("11th row must trip; the double release minted budget")
	}
}

func TestGovernorSpillDoubleReleaseClamps(t *testing.T) {
	g := NewGovernor(0, 0)
	g.SetSpillLimit(1000)
	if err := g.ReserveSpill("sort", 600); err != nil {
		t.Fatal(err)
	}
	g.ReleaseSpill(600)
	g.ReleaseSpill(600)
	if b := g.UsedSpillBytes(); b != 0 {
		t.Fatalf("after double release spill used = %d; want 0", b)
	}
	if err := g.ReserveSpill("sort", 1000); err != nil {
		t.Fatalf("full spill budget must fit after clamp: %v", err)
	}
	if err := g.ReserveSpill("sort", 1); err == nil {
		t.Fatal("over-budget spill reserve must trip")
	}
}

// Concurrent double releases across goroutines (the cancellation-unwind
// shape: every worker and the coordinator racing to return the same
// hold) must never leave the counters negative. Run with -race.
func TestGovernorConcurrentDoubleRelease(t *testing.T) {
	g := NewGovernor(0, 1<<30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = g.Reserve("op", 1, 64)
				g.Release(1, 64)
				g.Release(1, 64) // deliberate double release
			}
		}()
	}
	wg.Wait()
	if r, b := g.UsedRows(), g.UsedBytes(); r < 0 || b < 0 {
		t.Fatalf("negative usage after concurrent double releases: (%d, %d)", r, b)
	}
}
