package relation

import "fmt"

// V converts a Go literal to a Value: nil → null, bool, int/int64,
// float64, string. Any other type panics. It keeps table literals in tests
// and examples readable.
func V(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null()
	case Value:
		return t
	case bool:
		return Bool(t)
	case int:
		return Int(int64(t))
	case int64:
		return Int(t)
	case float64:
		return Float(t)
	case string:
		return Str(t)
	default:
		panic(fmt.Sprintf("relation: unsupported literal type %T", x))
	}
}

// FromRows builds a relation for ground relation rel with the given column
// names and row literals (see V for accepted literal types).
func FromRows(rel string, names []string, rows ...[]any) *Relation {
	r := New(SchemeOf(rel, names...))
	for _, row := range rows {
		if len(row) != len(names) {
			panic(fmt.Sprintf("relation: row arity %d does not match %d columns of %s", len(row), len(names), rel))
		}
		vals := make([]Value, len(row))
		for i, x := range row {
			vals[i] = V(x)
		}
		r.AppendRaw(vals)
	}
	return r
}
