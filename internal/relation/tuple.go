package relation

import (
	"fmt"
	"strings"
)

// Tuple is a row viewed through its scheme. It borrows (does not copy) the
// underlying value slice, so a Tuple is a cheap read-only view.
type Tuple struct {
	scheme *Scheme
	vals   []Value
}

// NewTuple wraps a value slice with its scheme. The arity must match.
func NewTuple(scheme *Scheme, vals []Value) (Tuple, error) {
	if len(vals) != scheme.Len() {
		return Tuple{}, fmt.Errorf("relation: tuple arity %d does not match scheme %s", len(vals), scheme)
	}
	return Tuple{scheme: scheme, vals: vals}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(scheme *Scheme, vals ...Value) Tuple {
	t, err := NewTuple(scheme, vals)
	if err != nil {
		panic(err)
	}
	return t
}

// NullTuple returns the all-null tuple on the scheme (the paper's null_S).
func NullTuple(scheme *Scheme) Tuple {
	return Tuple{scheme: scheme, vals: make([]Value, scheme.Len())}
}

// Scheme returns the tuple's scheme.
func (t Tuple) Scheme() *Scheme { return t.scheme }

// Len returns the number of fields.
func (t Tuple) Len() int { return len(t.vals) }

// At returns the i-th field.
func (t Tuple) At(i int) Value { return t.vals[i] }

// Values returns the underlying value slice; callers must not modify it.
func (t Tuple) Values() []Value { return t.vals }

// Get returns the value of attribute a and whether the attribute exists.
func (t Tuple) Get(a Attr) (Value, bool) {
	i := t.scheme.IndexOf(a)
	if i < 0 {
		return Value{}, false
	}
	return t.vals[i], true
}

// MustGet returns the value of attribute a, panicking if absent. Operators
// resolve attribute positions ahead of time; MustGet is for tests and
// diagnostics.
func (t Tuple) MustGet(a Attr) Value {
	v, ok := t.Get(a)
	if !ok {
		panic(fmt.Sprintf("relation: attribute %s not in scheme %s", a, t.scheme))
	}
	return v
}

// AllNullOn reports whether every attribute of the given set that appears
// in the tuple's scheme is null. It is the hypothesis of the paper's
// "strong predicate" definition: a predicate p is strong w.r.t. S when
// p(t)=False for every t whose S-attributes are all null.
func (t Tuple) AllNullOn(set AttrSet) bool {
	for a := range set {
		if i := t.scheme.IndexOf(a); i >= 0 && !t.vals[i].IsNull() {
			return false
		}
	}
	return true
}

// Concat concatenates two tuples on disjoint schemes (the paper's (t1,t2)).
func (t Tuple) Concat(u Tuple) (Tuple, error) {
	sch, err := t.scheme.Concat(u.scheme)
	if err != nil {
		return Tuple{}, err
	}
	vals := make([]Value, 0, len(t.vals)+len(u.vals))
	vals = append(vals, t.vals...)
	vals = append(vals, u.vals...)
	return Tuple{scheme: sch, vals: vals}, nil
}

// PadTo pads the tuple onto a superscheme, placing nulls in attributes the
// tuple does not have (the paper's padding with null_{S'-S}). Every
// attribute of the tuple's scheme must appear in target.
func (t Tuple) PadTo(target *Scheme) (Tuple, error) {
	vals := make([]Value, target.Len())
	for i, a := range t.scheme.attrs {
		j := target.IndexOf(a)
		if j < 0 {
			return Tuple{}, fmt.Errorf("relation: cannot pad: %s not in target scheme %s", a, target)
		}
		vals[j] = t.vals[i]
	}
	return Tuple{scheme: target, vals: vals}, nil
}

// Identical reports field-wise Go-level equality of two tuples over equal
// schemes (null == null). It returns false when the schemes differ.
func (t Tuple) Identical(u Tuple) bool {
	if !t.scheme.Equal(u.scheme) {
		return false
	}
	for i := range t.vals {
		if t.vals[i] != u.vals[i] {
			return false
		}
	}
	return true
}

// Key returns an unambiguous byte-string encoding of the row, used for bag
// comparison and hashing. Two rows over the same scheme have equal keys
// iff they are Identical.
func (t Tuple) Key() string { return string(appendRowKey(nil, t.vals)) }

func appendRowKey(b []byte, vals []Value) []byte {
	for _, v := range vals {
		b = v.appendKey(b)
	}
	return b
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
