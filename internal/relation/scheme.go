package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a qualified attribute name. The paper assumes database relations
// have mutually disjoint schemes, which qualification by ground-relation
// name guarantees (several copies of a relation are used with renamed
// attributes, i.e. a different Rel qualifier).
type Attr struct {
	Rel  string // ground relation (or tuple variable) the attribute belongs to
	Name string
}

// A returns the attribute Rel.Name; it is a convenience constructor for
// tests and examples.
func A(rel, name string) Attr { return Attr{Rel: rel, Name: name} }

// ParseAttr parses "Rel.Name". It returns an error if the dot is missing.
func ParseAttr(s string) (Attr, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return Attr{}, fmt.Errorf("relation: attribute %q is not of the form Rel.Name", s)
	}
	return Attr{Rel: s[:i], Name: s[i+1:]}, nil
}

// String returns "Rel.Name".
func (a Attr) String() string { return a.Rel + "." + a.Name }

// AttrSet is a set of attributes.
type AttrSet map[Attr]struct{}

// NewAttrSet builds a set from the given attributes.
func NewAttrSet(attrs ...Attr) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s AttrSet) Contains(a Attr) bool { _, ok := s[a]; return ok }

// Add inserts an attribute.
func (s AttrSet) Add(a Attr) { s[a] = struct{}{} }

// AddAll inserts every attribute of t.
func (s AttrSet) AddAll(t AttrSet) {
	for a := range t {
		s[a] = struct{}{}
	}
}

// Rels returns the set of relation qualifiers appearing in the set, sorted.
func (s AttrSet) Rels() []string {
	seen := map[string]struct{}{}
	for a := range s {
		seen[a.Rel] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Sorted returns the attributes in deterministic order.
func (s AttrSet) Sorted() []Attr {
	out := make([]Attr, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Intersects reports whether the two sets share an attribute.
func (s AttrSet) Intersects(t AttrSet) bool {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	for a := range small {
		if _, ok := big[a]; ok {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every attribute of s is in t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	for a := range s {
		if _, ok := t[a]; !ok {
			return false
		}
	}
	return true
}

// Scheme is an ordered set of attributes with O(1) position lookup. The
// order is the column order of relations over the scheme; two schemes with
// the same attributes in different orders are equal as sets (EqualSet) but
// lay out rows differently.
type Scheme struct {
	attrs []Attr
	index map[Attr]int
}

// NewScheme builds a scheme; duplicate attributes are an error because the
// paper's database schemes are mutually disjoint attribute sets.
func NewScheme(attrs ...Attr) (*Scheme, error) {
	s := &Scheme{attrs: append([]Attr(nil), attrs...), index: make(map[Attr]int, len(attrs))}
	for i, a := range s.attrs {
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %s in scheme", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustScheme is NewScheme that panics on error; for literals in tests and
// examples.
func MustScheme(attrs ...Attr) *Scheme {
	s, err := NewScheme(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// SchemeOf builds a scheme for one ground relation rel with the given
// column names.
func SchemeOf(rel string, names ...string) *Scheme {
	attrs := make([]Attr, len(names))
	for i, n := range names {
		attrs[i] = Attr{Rel: rel, Name: n}
	}
	return MustScheme(attrs...)
}

// Len returns the number of attributes.
func (s *Scheme) Len() int { return len(s.attrs) }

// At returns the i-th attribute.
func (s *Scheme) At(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Scheme) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// AttrSet returns the attributes as a set.
func (s *Scheme) AttrSet() AttrSet {
	out := make(AttrSet, len(s.attrs))
	for _, a := range s.attrs {
		out[a] = struct{}{}
	}
	return out
}

// IndexOf returns the position of a, or -1 if absent.
func (s *Scheme) IndexOf(a Attr) int {
	if i, ok := s.index[a]; ok {
		return i
	}
	return -1
}

// Contains reports whether a is in the scheme.
func (s *Scheme) Contains(a Attr) bool { _, ok := s.index[a]; return ok }

// ContainsAll reports whether every attribute in set is in the scheme.
func (s *Scheme) ContainsAll(set AttrSet) bool {
	for a := range set {
		if !s.Contains(a) {
			return false
		}
	}
	return true
}

// Disjoint reports whether the schemes share no attribute.
func (s *Scheme) Disjoint(t *Scheme) bool {
	for _, a := range t.attrs {
		if s.Contains(a) {
			return false
		}
	}
	return true
}

// Concat returns the scheme s ++ t; per the paper's concatenation
// convention the schemes must be disjoint.
func (s *Scheme) Concat(t *Scheme) (*Scheme, error) {
	if !s.Disjoint(t) {
		return nil, fmt.Errorf("relation: concatenating overlapping schemes %s and %s", s, t)
	}
	return NewScheme(append(s.Attrs(), t.attrs...)...)
}

// UnionFor returns the padded scheme used by the paper's union convention:
// the attributes of s followed by those of t not already present. Unlike
// Concat it tolerates overlap, because union compares relations after
// padding both sides to sch(X) ∪ sch(Y).
func (s *Scheme) UnionFor(t *Scheme) *Scheme {
	attrs := s.Attrs()
	for _, a := range t.attrs {
		if !s.Contains(a) {
			attrs = append(attrs, a)
		}
	}
	return MustScheme(attrs...)
}

// Project returns a scheme restricted to the listed attributes, in the
// listed order; every attribute must exist in s.
func (s *Scheme) Project(attrs []Attr) (*Scheme, error) {
	for _, a := range attrs {
		if !s.Contains(a) {
			return nil, fmt.Errorf("relation: projection attribute %s not in scheme %s", a, s)
		}
	}
	return NewScheme(attrs...)
}

// EqualSet reports whether the two schemes contain the same attributes,
// regardless of order.
func (s *Scheme) EqualSet(t *Scheme) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for _, a := range t.attrs {
		if !s.Contains(a) {
			return false
		}
	}
	return true
}

// Equal reports whether the schemes are identical including column order.
func (s *Scheme) Equal(t *Scheme) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if t.attrs[i] != a {
			return false
		}
	}
	return true
}

// Rels returns the distinct ground-relation qualifiers in the scheme,
// sorted.
func (s *Scheme) Rels() []string { return s.AttrSet().Rels() }

// String renders the scheme as "(A.x, A.y, B.z)".
func (s *Scheme) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}
