package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a finite bag of rows over a scheme. Rows are stored
// positionally ([]Value aligned with the scheme), which keeps joins and
// scans allocation-light compared with map-based tuples; attribute lookup
// goes through the scheme's index once per operator, not once per row.
type Relation struct {
	scheme *Scheme
	rows   [][]Value
}

// New returns an empty relation over the scheme.
func New(scheme *Scheme) *Relation {
	return &Relation{scheme: scheme}
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// Len returns the number of rows (counting duplicates).
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i-th row as a Tuple view.
func (r *Relation) Row(i int) Tuple { return Tuple{scheme: r.scheme, vals: r.rows[i]} }

// RawRow returns the i-th row's value slice; callers must not modify it.
func (r *Relation) RawRow(i int) []Value { return r.rows[i] }

// CopyRow returns a fresh copy of a row. Operators use it to retain a
// row past the producer's next Next/NextBatch call: under the ownership
// contract a row handed up by an iterator is only valid until then, so
// anything buffered (a hash-join build side, a sort buffer, a merge-join
// group) must be copied first.
func CopyRow(row []Value) []Value {
	out := make([]Value, len(row))
	copy(out, row)
	return out
}

// Append adds a row; the arity must match the scheme.
func (r *Relation) Append(vals ...Value) error {
	if len(vals) != r.scheme.Len() {
		return fmt.Errorf("relation: row arity %d does not match scheme %s", len(vals), r.scheme)
	}
	r.rows = append(r.rows, vals)
	return nil
}

// MustAppend is Append that panics on error.
func (r *Relation) MustAppend(vals ...Value) {
	if err := r.Append(vals...); err != nil {
		panic(err)
	}
}

// AppendRaw adds a pre-validated row without copying; internal operators
// use it after computing output rows of the correct arity.
func (r *Relation) AppendRaw(vals []Value) { r.rows = append(r.rows, vals) }

// AppendTuple pads the tuple to the relation's scheme and appends it.
func (r *Relation) AppendTuple(t Tuple) error {
	if t.scheme.Equal(r.scheme) {
		r.rows = append(r.rows, t.vals)
		return nil
	}
	p, err := t.PadTo(r.scheme)
	if err != nil {
		return err
	}
	r.rows = append(r.rows, p.vals)
	return nil
}

// Clone returns a deep-enough copy: the row list is copied, the rows
// themselves are shared (rows are treated as immutable throughout).
func (r *Relation) Clone() *Relation {
	return &Relation{scheme: r.scheme, rows: append([][]Value(nil), r.rows...)}
}

// Tuples iterates rows in order, invoking f for each; it stops early if f
// returns false.
func (r *Relation) Tuples(f func(Tuple) bool) {
	for i := range r.rows {
		if !f(r.Row(i)) {
			return
		}
	}
}

// PadTo returns a copy of the relation padded onto a superscheme.
func (r *Relation) PadTo(target *Scheme) (*Relation, error) {
	if r.scheme.Equal(target) {
		return r, nil
	}
	// Precompute the column mapping once.
	pos := make([]int, r.scheme.Len())
	for i := 0; i < r.scheme.Len(); i++ {
		j := target.IndexOf(r.scheme.At(i))
		if j < 0 {
			return nil, fmt.Errorf("relation: cannot pad: %s not in target scheme %s", r.scheme.At(i), target)
		}
		pos[i] = j
	}
	out := New(target)
	for _, row := range r.rows {
		nv := make([]Value, target.Len())
		for i, j := range pos {
			nv[j] = row[i]
		}
		out.rows = append(out.rows, nv)
	}
	return out, nil
}

// SortCanonical orders rows by the total order on values; it is used to
// render relations deterministically and to speed up bag comparison of
// large results.
func (r *Relation) SortCanonical() {
	sort.Slice(r.rows, func(i, j int) bool {
		a, b := r.rows[i], r.rows[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// EqualBag reports multiset equality of two relations. The schemes must
// contain the same attributes (order-insensitive: columns are aligned by
// attribute before comparing), matching the paper's convention that
// results are compared after padding to the union scheme.
func (r *Relation) EqualBag(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	if !r.scheme.EqualSet(s.scheme) {
		return false
	}
	// Align s's columns to r's order.
	perm := make([]int, r.scheme.Len())
	for i := 0; i < r.scheme.Len(); i++ {
		perm[i] = s.scheme.IndexOf(r.scheme.At(i))
	}
	counts := make(map[string]int, r.Len())
	var buf []byte
	for _, row := range r.rows {
		buf = appendRowKey(buf[:0], row)
		counts[string(buf)]++
	}
	aligned := make([]Value, len(perm))
	for _, row := range s.rows {
		for i, j := range perm {
			aligned[i] = row[j]
		}
		buf = appendRowKey(buf[:0], aligned)
		k := string(buf)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// Dedup returns a copy with duplicate rows removed (set semantics); used
// by the paper's duplicate-removing projection π in the GOJ definition.
func (r *Relation) Dedup() *Relation {
	out := New(r.scheme)
	seen := make(map[string]struct{}, len(r.rows))
	var buf []byte
	for _, row := range r.rows {
		buf = appendRowKey(buf[:0], row)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.rows = append(out.rows, row)
	}
	return out
}

// HasDuplicates reports whether any row occurs more than once.
func (r *Relation) HasDuplicates() bool {
	seen := make(map[string]struct{}, len(r.rows))
	var buf []byte
	for _, row := range r.rows {
		buf = appendRowKey(buf[:0], row)
		if _, dup := seen[string(buf)]; dup {
			return true
		}
		seen[string(buf)] = struct{}{}
	}
	return false
}

// String renders the relation as an aligned text table, rows in canonical
// order (the receiver is not mutated).
func (r *Relation) String() string {
	cp := r.Clone()
	cp.SortCanonical()
	cols := r.scheme.Len()
	widths := make([]int, cols)
	header := make([]string, cols)
	for i := 0; i < cols; i++ {
		header[i] = r.scheme.At(i).String()
		widths[i] = len(header[i])
	}
	cells := make([][]string, len(cp.rows))
	for ri, row := range cp.rows {
		cells[ri] = make([]string, cols)
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			if i < len(fields)-1 { // no trailing padding on the last column
				for p := len(f); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(cp.rows))
	return b.String()
}
