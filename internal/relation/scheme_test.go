package relation

import (
	"testing"
)

func TestParseAttr(t *testing.T) {
	a, err := ParseAttr("R.x")
	if err != nil || a != (Attr{Rel: "R", Name: "x"}) {
		t.Fatalf("ParseAttr(R.x) = %v, %v", a, err)
	}
	for _, bad := range []string{"Rx", ".x", "R.", ""} {
		if _, err := ParseAttr(bad); err == nil {
			t.Errorf("ParseAttr(%q) should fail", bad)
		}
	}
	if A("R", "x").String() != "R.x" {
		t.Error("Attr.String broken")
	}
}

func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet(A("R", "x"), A("S", "y"))
	if !s.Contains(A("R", "x")) || s.Contains(A("R", "z")) {
		t.Error("Contains broken")
	}
	s.Add(A("R", "z"))
	if !s.Contains(A("R", "z")) {
		t.Error("Add broken")
	}
	other := NewAttrSet(A("T", "w"))
	s.AddAll(other)
	if !s.Contains(A("T", "w")) {
		t.Error("AddAll broken")
	}
	rels := s.Rels()
	if len(rels) != 3 || rels[0] != "R" || rels[1] != "S" || rels[2] != "T" {
		t.Errorf("Rels = %v", rels)
	}
	if !NewAttrSet(A("R", "x")).SubsetOf(s) {
		t.Error("SubsetOf broken")
	}
	if s.SubsetOf(NewAttrSet(A("R", "x"))) {
		t.Error("SubsetOf must be false for proper superset")
	}
	if !s.Intersects(NewAttrSet(A("S", "y"), A("Q", "q"))) {
		t.Error("Intersects broken (positive)")
	}
	if s.Intersects(NewAttrSet(A("Q", "q"))) {
		t.Error("Intersects broken (negative)")
	}
	sorted := NewAttrSet(A("B", "b"), A("A", "z"), A("A", "a")).Sorted()
	want := []Attr{A("A", "a"), A("A", "z"), A("B", "b")}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", sorted, want)
		}
	}
}

func TestSchemeBasics(t *testing.T) {
	s := SchemeOf("R", "a", "b", "c")
	if s.Len() != 3 || s.At(1) != A("R", "b") {
		t.Fatal("SchemeOf broken")
	}
	if s.IndexOf(A("R", "c")) != 2 || s.IndexOf(A("R", "z")) != -1 {
		t.Error("IndexOf broken")
	}
	if !s.Contains(A("R", "a")) || s.Contains(A("S", "a")) {
		t.Error("Contains broken")
	}
	if !s.ContainsAll(NewAttrSet(A("R", "a"), A("R", "b"))) {
		t.Error("ContainsAll positive broken")
	}
	if s.ContainsAll(NewAttrSet(A("R", "a"), A("S", "x"))) {
		t.Error("ContainsAll negative broken")
	}
	if got := s.String(); got != "(R.a, R.b, R.c)" {
		t.Errorf("String = %q", got)
	}
	if rels := s.Rels(); len(rels) != 1 || rels[0] != "R" {
		t.Errorf("Rels = %v", rels)
	}
}

func TestSchemeDuplicateRejected(t *testing.T) {
	if _, err := NewScheme(A("R", "a"), A("R", "a")); err == nil {
		t.Fatal("duplicate attribute must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustScheme must panic on duplicates")
		}
	}()
	MustScheme(A("R", "a"), A("R", "a"))
}

func TestSchemeConcat(t *testing.T) {
	r := SchemeOf("R", "a")
	s := SchemeOf("S", "b")
	rs, err := r.Concat(s)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 || rs.At(0) != A("R", "a") || rs.At(1) != A("S", "b") {
		t.Errorf("Concat = %v", rs)
	}
	if _, err := rs.Concat(r); err == nil {
		t.Error("overlapping Concat must fail")
	}
}

func TestSchemeUnionFor(t *testing.T) {
	r := SchemeOf("R", "a", "b")
	s := MustScheme(A("R", "b"), A("S", "c"))
	u := r.UnionFor(s)
	if u.Len() != 3 || u.At(2) != A("S", "c") {
		t.Errorf("UnionFor = %v", u)
	}
}

func TestSchemeProject(t *testing.T) {
	s := SchemeOf("R", "a", "b", "c")
	p, err := s.Project([]Attr{A("R", "c"), A("R", "a")})
	if err != nil || p.Len() != 2 || p.At(0) != A("R", "c") {
		t.Fatalf("Project = %v, %v", p, err)
	}
	if _, err := s.Project([]Attr{A("S", "x")}); err == nil {
		t.Error("projecting a missing attribute must fail")
	}
}

func TestSchemeEquality(t *testing.T) {
	a := SchemeOf("R", "x", "y")
	b := MustScheme(A("R", "y"), A("R", "x"))
	if !a.EqualSet(b) {
		t.Error("EqualSet must ignore order")
	}
	if a.Equal(b) {
		t.Error("Equal must respect order")
	}
	if a.EqualSet(SchemeOf("R", "x")) {
		t.Error("EqualSet must compare sizes")
	}
	if a.EqualSet(SchemeOf("R", "x", "z")) {
		t.Error("EqualSet must compare membership")
	}
	if !a.Equal(SchemeOf("R", "x", "y")) {
		t.Error("Equal positive broken")
	}
}

func TestSchemeDisjoint(t *testing.T) {
	a := SchemeOf("R", "x")
	b := SchemeOf("S", "x")
	if !a.Disjoint(b) {
		t.Error("R.x and S.x are distinct attrs")
	}
	if a.Disjoint(a) {
		t.Error("a scheme is not disjoint from itself")
	}
}

func TestSchemeAttrsCopy(t *testing.T) {
	s := SchemeOf("R", "a", "b")
	attrs := s.Attrs()
	attrs[0] = A("X", "x")
	if s.At(0) != A("R", "a") {
		t.Error("Attrs must return a copy")
	}
	set := s.AttrSet()
	if len(set) != 2 || !set.Contains(A("R", "b")) {
		t.Error("AttrSet broken")
	}
}
