package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	s := SchemeOf("R", "a", "b")
	tp := MustTuple(s, Int(1), Str("x"))
	if tp.Len() != 2 || tp.At(0) != Int(1) {
		t.Fatal("tuple construction broken")
	}
	if v, ok := tp.Get(A("R", "b")); !ok || v != Str("x") {
		t.Error("Get broken")
	}
	if _, ok := tp.Get(A("R", "z")); ok {
		t.Error("Get must report missing attrs")
	}
	if tp.MustGet(A("R", "a")) != Int(1) {
		t.Error("MustGet broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet should panic on missing attr")
			}
		}()
		tp.MustGet(A("Z", "z"))
	}()
	if got := tp.String(); got != "(1, x)" {
		t.Errorf("String = %q", got)
	}
	if _, err := NewTuple(s, []Value{Int(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestNullTuple(t *testing.T) {
	s := SchemeOf("R", "a", "b")
	nt := NullTuple(s)
	for i := 0; i < nt.Len(); i++ {
		if !nt.At(i).IsNull() {
			t.Fatal("NullTuple must be all null")
		}
	}
	if !nt.AllNullOn(s.AttrSet()) {
		t.Error("AllNullOn broken on null tuple")
	}
}

func TestAllNullOn(t *testing.T) {
	s := SchemeOf("R", "a", "b")
	tp := MustTuple(s, Null(), Int(2))
	if !tp.AllNullOn(NewAttrSet(A("R", "a"))) {
		t.Error("a is null")
	}
	if tp.AllNullOn(NewAttrSet(A("R", "b"))) {
		t.Error("b is not null")
	}
	// Attributes outside the scheme are vacuously null-satisfied.
	if !tp.AllNullOn(NewAttrSet(A("S", "z"))) {
		t.Error("attrs absent from the scheme do not block AllNullOn")
	}
}

func TestTupleConcatAndPad(t *testing.T) {
	r := MustTuple(SchemeOf("R", "a"), Int(1))
	s := MustTuple(SchemeOf("S", "b"), Str("x"))
	rs, err := r.Concat(s)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 || rs.MustGet(A("S", "b")) != Str("x") {
		t.Error("Concat broken")
	}
	if _, err := r.Concat(r); err == nil {
		t.Error("Concat of overlapping schemes must fail")
	}

	target := MustScheme(A("S", "b"), A("R", "a"), A("T", "c"))
	p, err := r.PadTo(target)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustGet(A("R", "a")) != Int(1) || !p.MustGet(A("T", "c")).IsNull() || !p.MustGet(A("S", "b")).IsNull() {
		t.Errorf("PadTo produced %v", p)
	}
	if _, err := rs.PadTo(SchemeOf("R", "a")); err == nil {
		t.Error("PadTo must fail when target misses attrs")
	}
}

func TestTupleIdenticalAndKey(t *testing.T) {
	s := SchemeOf("R", "a", "b")
	t1 := MustTuple(s, Int(1), Null())
	t2 := MustTuple(s, Int(1), Null())
	t3 := MustTuple(s, Int(1), Int(0))
	if !t1.Identical(t2) || t1.Identical(t3) {
		t.Error("Identical broken")
	}
	if t1.Key() != t2.Key() || t1.Key() == t3.Key() {
		t.Error("Key broken")
	}
	other := MustTuple(SchemeOf("S", "a", "b"), Int(1), Null())
	if t1.Identical(other) {
		t.Error("Identical must require equal schemes")
	}
}

func TestRelationAppendAndLen(t *testing.T) {
	r := New(SchemeOf("R", "a"))
	if err := r.Append(Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Int(1), Int(2)); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	r.MustAppend(Int(2))
	if r.Len() != 2 || r.Row(1).At(0) != Int(2) {
		t.Error("Append/Len/Row broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAppend should panic on bad arity")
			}
		}()
		r.MustAppend()
	}()
}

func TestRelationAppendTuple(t *testing.T) {
	r := New(MustScheme(A("R", "a"), A("S", "b")))
	sub := MustTuple(SchemeOf("R", "a"), Int(7))
	if err := r.AppendTuple(sub); err != nil {
		t.Fatal(err)
	}
	if got := r.Row(0); got.At(0) != Int(7) || !got.At(1).IsNull() {
		t.Errorf("AppendTuple pad = %v", got)
	}
	same := MustTuple(r.Scheme(), Int(1), Str("x"))
	if err := r.AppendTuple(same); err != nil || r.Len() != 2 {
		t.Error("AppendTuple same-scheme broken")
	}
	bad := MustTuple(SchemeOf("Z", "z"), Int(1))
	if err := r.AppendTuple(bad); err == nil {
		t.Error("AppendTuple with foreign scheme must fail")
	}
}

func TestRelationEqualBag(t *testing.T) {
	a := FromRows("R", []string{"x", "y"},
		[]any{1, "a"}, []any{1, "a"}, []any{2, nil})
	b := FromRows("R", []string{"x", "y"},
		[]any{2, nil}, []any{1, "a"}, []any{1, "a"})
	if !a.EqualBag(b) {
		t.Fatal("bag equality must ignore order")
	}
	c := FromRows("R", []string{"x", "y"},
		[]any{1, "a"}, []any{2, nil}, []any{2, nil})
	if a.EqualBag(c) {
		t.Fatal("bag equality must respect multiplicities")
	}
	short := FromRows("R", []string{"x", "y"}, []any{1, "a"})
	if a.EqualBag(short) {
		t.Fatal("bag equality must compare sizes")
	}
	otherScheme := FromRows("S", []string{"x", "y"},
		[]any{1, "a"}, []any{1, "a"}, []any{2, nil})
	if a.EqualBag(otherScheme) {
		t.Fatal("bag equality must compare schemes")
	}
}

func TestRelationEqualBagColumnOrderInsensitive(t *testing.T) {
	a := New(MustScheme(A("R", "x"), A("R", "y")))
	a.MustAppend(Int(1), Str("a"))
	b := New(MustScheme(A("R", "y"), A("R", "x")))
	b.MustAppend(Str("a"), Int(1))
	if !a.EqualBag(b) {
		t.Fatal("EqualBag must align columns by attribute")
	}
	b2 := New(MustScheme(A("R", "y"), A("R", "x")))
	b2.MustAppend(Int(1), Str("a")) // swapped content
	if a.EqualBag(b2) {
		t.Fatal("EqualBag must not match misaligned content")
	}
}

func TestRelationDedupAndHasDuplicates(t *testing.T) {
	r := FromRows("R", []string{"x"}, []any{1}, []any{1}, []any{2})
	if !r.HasDuplicates() {
		t.Error("HasDuplicates positive broken")
	}
	d := r.Dedup()
	if d.Len() != 2 || d.HasDuplicates() {
		t.Errorf("Dedup -> %d rows", d.Len())
	}
	if r.Len() != 3 {
		t.Error("Dedup must not mutate the receiver")
	}
}

func TestRelationPadTo(t *testing.T) {
	r := FromRows("R", []string{"a"}, []any{1}, []any{2})
	target := MustScheme(A("S", "b"), A("R", "a"))
	p, err := r.PadTo(target)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || !p.Row(0).At(0).IsNull() || p.Row(0).At(1) != Int(1) {
		t.Errorf("PadTo = %v", p.Row(0))
	}
	if q, err := r.PadTo(r.Scheme()); err != nil || q != r {
		t.Error("PadTo to same scheme should be identity")
	}
	if _, err := r.PadTo(SchemeOf("S", "b")); err == nil {
		t.Error("PadTo must fail when target misses attrs")
	}
}

func TestRelationCloneIsolation(t *testing.T) {
	r := FromRows("R", []string{"a"}, []any{1})
	c := r.Clone()
	c.MustAppend(Int(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone must isolate the row list")
	}
}

func TestRelationTuplesEarlyStop(t *testing.T) {
	r := FromRows("R", []string{"a"}, []any{1}, []any{2}, []any{3})
	n := 0
	r.Tuples(func(Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d rows", n)
	}
}

func TestRelationString(t *testing.T) {
	r := FromRows("R", []string{"a", "b"}, []any{2, nil}, []any{1, "xyz"})
	s := r.String()
	if !strings.Contains(s, "R.a") || !strings.Contains(s, "(2 rows)") {
		t.Errorf("String output missing pieces:\n%s", s)
	}
	// Canonical order: row with 1 first.
	if strings.Index(s, "1 ") > strings.Index(s, "2 ") {
		t.Errorf("rows not canonically sorted:\n%s", s)
	}
	if r.Row(0).At(0) != Int(2) {
		t.Error("String must not mutate row order")
	}
}

func TestSortCanonicalProperty(t *testing.T) {
	f := func(xs []int8) bool {
		r := New(SchemeOf("R", "a"))
		for _, x := range xs {
			r.MustAppend(Int(int64(x)))
		}
		r.SortCanonical()
		for i := 1; i < r.Len(); i++ {
			if r.Row(i-1).At(0).Compare(r.Row(i).At(0)) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromRowsAndV(t *testing.T) {
	r := FromRows("R", []string{"a", "b", "c", "d", "e"},
		[]any{nil, true, 1, 2.5, "s"})
	row := r.Row(0)
	if !row.At(0).IsNull() || !row.At(1).AsBool() || row.At(2).AsInt() != 1 ||
		row.At(3).AsFloat() != 2.5 || row.At(4).AsString() != "s" {
		t.Errorf("FromRows literal conversion broken: %v", row)
	}
	if V(Int(9)) != Int(9) {
		t.Error("V must pass Values through")
	}
	if V(int64(3)) != Int(3) {
		t.Error("V int64 broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("V should panic on unsupported type")
			}
		}()
		V(struct{}{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("FromRows should panic on arity mismatch")
			}
		}()
		FromRows("R", []string{"a"}, []any{1, 2})
	}()
}
