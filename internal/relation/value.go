// Package relation implements the relational data model of Rosenthal &
// Galindo-Legaria (SIGMOD 1990): schemes of qualified attributes, tuples
// whose fields may be null, and finite bag relations, together with the
// concatenation, padding and union conventions the paper's algebra relies
// on.
//
// Relations are bags (duplicates permitted): the paper explicitly prefers
// algebraic proofs that remain valid "in an environment where duplicates
// are permitted", so equality of query results is multiset equality (see
// Relation.EqualBag).
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds. KindNull is the zero value, so an uninitialized Value is
// the SQL null, matching the paper's null-padding convention.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single attribute value. The zero Value is null. Values are
// comparable with == (suitable as map keys), but note that == treats two
// nulls as identical; predicate evaluation instead uses three-valued logic
// (see package predicate).
type Value struct {
	kind Kind
	i    int64 // also stores bool as 0/1
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value. The name collides with fmt.Stringer
// deliberately only at package level; the method is Value.Text/Value.String.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean content; it panics if the kind is not bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// AsInt returns the integer content; it panics if the kind is not int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric content widened to float64; it panics if the
// kind is neither int nor float.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string content; it panics if the kind is not string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: AsString on %s value", v.kind))
	}
	return v.s
}

// Identical reports Go-level equality: two nulls are identical, and values
// of different kinds are never identical (no numeric coercion). Use this
// for grouping and duplicate elimination; use Compare3VL semantics in
// package predicate for query predicates.
func (v Value) Identical(w Value) bool { return v == w }

// Comparable reports whether the two values can be ordered by Compare
// without a type error: both non-null and of the same kind, or both
// numeric.
func (v Value) Comparable(w Value) bool {
	if v.kind == KindNull || w.kind == KindNull {
		return false
	}
	if v.kind == w.kind {
		return true
	}
	return v.isNumeric() && w.isNumeric()
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1, 0 or +1. Nulls sort before all non-null
// values, and distinct kinds order by kind tag (bool < int/float < string);
// ints and floats compare numerically. This is a total order used for
// canonical sorting and ordered indexes, not for predicate truth.
func (v Value) Compare(w Value) int {
	vk, wk := v.orderClass(), w.orderClass()
	if vk != wk {
		if vk < wk {
			return -1
		}
		return 1
	}
	switch vk {
	case 0: // both null
		return 0
	case 1: // bool
		return cmpInt64(v.i, w.i)
	case 2: // numeric
		if v.kind == KindInt && w.kind == KindInt {
			return cmpInt64(v.i, w.i)
		}
		return cmpFloat64(v.AsFloat(), w.AsFloat())
	default: // string
		return strings.Compare(v.s, w.s)
	}
}

func (v Value) orderClass() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// Order NaNs deterministically before everything else.
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	default:
		return 0
	}
}

// String renders the value for display; null renders as "-" following the
// paper's figures (e.g. "(r1, -, -)").
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// AppendKey appends an unambiguous encoding of the value to b, used to
// build hash keys for bag comparison, hash joins and hash indexes. Two
// values have equal encodings iff they are Identical.
func AppendKey(b []byte, v Value) []byte { return v.appendKey(b) }

// AppendJoinKey appends an encoding under which two non-null values have
// equal keys iff an equality predicate would hold between them
// (Compare == 0). It differs from AppendKey on numerics: an integral
// float encodes like the equal int, so hash joins agree with the
// nested-loop three-valued comparison semantics. Callers must skip null
// values (null never equi-matches).
func AppendJoinKey(b []byte, v Value) []byte {
	if v.kind == KindFloat {
		f := v.f
		if f == math.Trunc(f) && f >= -9.2e18 && f <= 9.2e18 {
			return Int(int64(f)).appendKey(b)
		}
	}
	return v.appendKey(b)
}

// appendKey appends an unambiguous encoding of the value, used to build
// hash keys for bag comparison and hash joins.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 'N')
	case KindBool:
		if v.i != 0 {
			return append(b, 'T')
		}
		return append(b, 'F')
	case KindInt:
		b = append(b, 'I')
		b = strconv.AppendInt(b, v.i, 10)
		return append(b, '|')
	case KindFloat:
		b = append(b, 'D')
		b = strconv.AppendUint(b, math.Float64bits(v.f), 16)
		return append(b, '|')
	default:
		b = append(b, 'S')
		b = strconv.AppendInt(b, int64(len(v.s)), 10)
		b = append(b, ':')
		b = append(b, v.s...)
		return b
	}
}
