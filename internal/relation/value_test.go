package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be null")
	}
	if v.Kind() != KindNull {
		t.Fatalf("kind = %v, want null", v.Kind())
	}
	if v.String() != "-" {
		t.Fatalf("null renders as %q, want -", v.String())
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := Bool(true); !got.AsBool() || got.Kind() != KindBool {
		t.Errorf("Bool(true) = %v", got)
	}
	if got := Bool(false); got.AsBool() {
		t.Errorf("Bool(false).AsBool() = true")
	}
	if got := Int(-7); got.AsInt() != -7 || got.Kind() != KindInt {
		t.Errorf("Int(-7) = %v", got)
	}
	if got := Float(2.5); got.AsFloat() != 2.5 || got.Kind() != KindFloat {
		t.Errorf("Float(2.5) = %v", got)
	}
	if got := Str("x"); got.AsString() != "x" || got.Kind() != KindString {
		t.Errorf("Str(x) = %v", got)
	}
	if Int(3).AsFloat() != 3.0 {
		t.Errorf("Int.AsFloat widening failed")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null().AsBool() },
		func() { Int(1).AsBool() },
		func() { Str("a").AsInt() },
		func() { Bool(true).AsFloat() },
		func() { Int(1).AsString() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueIdentical(t *testing.T) {
	if !Null().Identical(Null()) {
		t.Error("null must be Identical to null (grouping semantics)")
	}
	if Int(1).Identical(Float(1)) {
		t.Error("no numeric coercion in Identical")
	}
	if !Int(5).Identical(Int(5)) || Int(5).Identical(Int(6)) {
		t.Error("int Identical broken")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null(), Bool(false), Bool(true),
		Int(-3), Float(-1.5), Int(0), Float(0.5), Int(2),
		Str(""), Str("a"), Str("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Int(0) vs Float(0.0) style ties don't appear in this list.
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCompareNumericCross(t *testing.T) {
	if Int(2).Compare(Float(2.0)) != 0 {
		t.Error("Int(2) should compare equal to Float(2.0)")
	}
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("Int(2) < Float(2.5) expected")
	}
	nan := Float(math.NaN())
	if nan.Compare(nan) != 0 {
		t.Error("NaN must compare equal to itself for a total order")
	}
	if nan.Compare(Float(0)) != -1 || Float(0).Compare(nan) != 1 {
		t.Error("NaN must order before numbers deterministically")
	}
}

func TestValueComparable(t *testing.T) {
	if Null().Comparable(Int(1)) || Int(1).Comparable(Null()) {
		t.Error("null is not comparable")
	}
	if !Int(1).Comparable(Float(2)) {
		t.Error("numerics are mutually comparable")
	}
	if Int(1).Comparable(Str("a")) {
		t.Error("int and string are not comparable")
	}
	if !Str("a").Comparable(Str("b")) {
		t.Error("strings are comparable")
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false), Int(0), Int(1), Int(-1),
		Float(0), Float(1), Str(""), Str("N"), Str("I1|"), Str("0"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := string(v.appendKey(nil))
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestValueKeyPropertyEqualIffIdentical(t *testing.T) {
	f := func(a, b int64, s1, s2 string, pick uint8) bool {
		mk := func(p uint8, i int64, s string) Value {
			switch p % 4 {
			case 0:
				return Null()
			case 1:
				return Int(i)
			case 2:
				return Str(s)
			default:
				return Float(float64(i) / 3)
			}
		}
		v, w := mk(pick, a, s1), mk(pick>>2, b, s2)
		return (string(v.appendKey(nil)) == string(w.appendKey(nil))) == v.Identical(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "-"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(42), "42"},
		{Float(1.5), "1.5"},
		{Str("hi"), "hi"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}
