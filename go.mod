module freejoin

go 1.22
