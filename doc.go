// Package freejoin is a from-scratch implementation of Rosenthal &
// Galindo-Legaria, "Query Graphs, Implementing Trees, and
// Freely-Reorderable Outerjoins" (SIGMOD 1990): query graphs for
// join/outerjoin queries, implementing trees and their basic transforms,
// the free-reorderability theorem as a decision procedure, the §4
// restriction simplification, the §5 UnNest/Link language, and the §6.2
// generalized outerjoin — together with the storage, execution and
// cost-based optimization substrate needed to reproduce the paper's
// examples end to end.
//
// The root package carries the repository-level benchmark harness and
// integration tests; the library lives under internal/ (see README.md
// for the map) and the runnable entry points under cmd/ and examples/.
package freejoin
