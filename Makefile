GO ?= go

.PHONY: all check build test race cover bench experiments faults fuzz fmt vet clean

all: check

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

# Fault-injection and resource-governance suite; -count=2 shakes out
# state reuse across re-Open (operators must fully reset).
faults:
	$(GO) test -count=2 -run 'Fault|ErrorPath|Cancelled|Deadline|MemoryBudget|Degradation|Governor|Leak|Collect' ./internal/exec ./internal/storage ./internal/resource ./internal/optimizer

# Each fuzz target runs for a short budget; extend FUZZTIME for real runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz='FuzzExpr$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzPred$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzExprGraph$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/lang
	$(GO) test -fuzz='FuzzReadCSV$$' -fuzztime=$(FUZZTIME) ./internal/storage

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt
