GO ?= go

.PHONY: all check build test race cover bench bench-json bench-diff profile experiments faults obs spill server chaos yannakakis batch fuzz fuzz-smoke fmt vet clean

all: check

check: build vet test race fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark baseline: BENCH_<date>.json with name,
# iterations, ns/op, B/op and allocs/op per benchmark. BENCHTIME keeps
# the snapshot quick; raise it for a low-noise baseline.
BENCHTIME ?= 100ms
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$$(date +%F).json

# Advisory regression gate: compare the newest committed baseline against
# a fresh run, flagging >20% growth in ns/op or allocs/op. Exits 1 on a
# regression; CI runs it with continue-on-error so noise never blocks.
bench-diff:
	@base=$$(ls BENCH_*.json | sort | tail -1) && \
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o /tmp/bench-new.json && \
	$(GO) run ./cmd/benchjson -diff $$base /tmp/bench-new.json

# Continuous-profiling snapshot: bench the root package (go test only
# accepts -cpuprofile/-memprofile for a single package) under CPU and
# allocation profiling, regenerate the dated BENCH_*.json across ./...,
# and file a top-N attribution report next to it. PROFILE_<date>.json is
# the hit list for the vectorized-execution work (ROADMAP open item 1).
profile:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) \
		-cpuprofile=cpu.prof -memprofile=mem.prof .
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$$(date +%F).json
	$(GO) run ./cmd/benchjson -cpu cpu.prof -mem mem.prof -top 20 \
		-o PROFILE_$$(date +%F).json
	@echo "profile: attribution report in PROFILE_$$(date +%F).json"

experiments:
	$(GO) run ./cmd/experiments

# Fault-injection and resource-governance suite; -count=2 shakes out
# state reuse across re-Open (operators must fully reset).
faults:
	$(GO) test -count=2 -run 'Fault|ErrorPath|Cancelled|Deadline|MemoryBudget|Degradation|Governor|Leak|Collect' ./internal/exec ./internal/storage ./internal/resource ./internal/optimizer

# Observability suite: the metrics registry and tracer, the span/stats
# consistency property, concurrent scraping during a parallel join, and
# the shell/CLI monitoring surfaces — under the race detector, -count=2
# for state reuse.
obs:
	$(GO) test -race -count=2 ./internal/obs ./internal/exec -run 'Span|Scrape|Counter|Histogram|Gauge|Registry|Trace|Ring|Slow|Server|Health|Metrics'
	$(GO) test -race -count=2 ./cmd/ojshell ./cmd/reorder ./cmd/benchjson

# Spill-to-disk suite: external sort, grace hash join, the spilled
# nested-loop/merge joins, the metamorphic and fault-injection spill
# oracles, and the failed-Open/trip-during-Open governor regressions —
# under the race detector, -count=2 for state reuse across re-Open.
# Runs with TMPDIR pointed at a scratch dir and fails if any ojspill-*
# run file survives the suite.
spill:
	@dir=$$(mktemp -d) && \
	TMPDIR=$$dir $(GO) test -race -count=2 -run 'Spill|FailedOpen|TripDuring|ExternalSort|Grace' ./internal/exec ./internal/exec/spill ./internal/optimizer && \
	leaked=$$(find $$dir -name 'ojspill-*' | wc -l) && \
	rm -rf $$dir && \
	if [ $$leaked -ne 0 ]; then echo "spill: $$leaked run files leaked"; exit 1; fi

# Concurrent query server suite: admission control (FIFO order,
# oversized/queue-full shedding, cancel-while-queued, never-overcommit
# stress), the TCP protocol end to end, the workload driver, and the
# 16-client mixed-traffic soak (prepared hits, cold misses, governor
# trips, spilling, cancellations against one shared core) with tracer
# reconciliation and goroutine/temp-file leak checks — under the race
# detector, -count=2 for state reuse across server restarts.
server:
	$(GO) test -race -count=2 ./internal/server ./internal/workload ./cmd/ojserver

# Chaos suite: the fault-injection wrapper's determinism and framing
# contracts, connection hygiene (bounded lines, idle timeout,
# kill-conn-mid-execute), panic isolation, load shedding, graceful
# drain, the retrying client, and the seeded 16-client chaos soak
# (10% per-I/O fault rate with injected executor panics; goodput,
# bag-correctness, tracer reconciliation and leak checks) — under the
# race detector, -count=2 for state reuse. The soak seed is fixed in
# chaos_soak_test.go, so a failure replays byte-for-byte.
chaos:
	$(GO) test -race -count=2 ./internal/chaos
	$(GO) test -race -count=2 -run 'Chaos|Panic|MaxLine|IdleTimeout|KillConn|Shedding|Drain|BusyQuery' ./internal/server ./internal/exec
	$(GO) test -race -count=2 ./internal/workload

# Yannakakis acyclic fast-path suite: join-tree construction and the
# outerjoin-aware reducer program, the semijoin-reduce operator (both
# paths, spill, null keys, reduction counters), the 200-instance
# metamorphic oracle against the DP and fixed-order execution on
# dangling-heavy data (with the intermediate-cardinality guarantee
# checked on every instance), strategy dispatch/fallback/auto, plan-
# cache keying, and the dangling workload generator — under the race
# detector, -count=2 for state reuse across re-Open. The spill leak
# check mirrors the spill suite's.
yannakakis:
	@dir=$$(mktemp -d) && \
	TMPDIR=$$dir $(GO) test -race -count=2 -run 'Yannakakis|JoinTree|ReducerProgram|SemiReduce|Strategy|Dangling' \
		./internal/graph ./internal/exec ./internal/optimizer ./internal/workload && \
	leaked=$$(find $$dir -name 'ojspill-*' | wc -l) && \
	rm -rf $$dir && \
	if [ $$leaked -ne 0 ]; then echo "yannakakis: $$leaked run files leaked"; exit 1; fi

# Batch-execution suite: the batch layer's unit tests (null bitmap,
# adapter round-trip, trip delegation, stream mode), the registry-wide
# row-ownership detector (poisoned producers + scribbling callers), and
# the 200-instance metamorphic oracles in both row and batch modes with
# the per-instance cross-mode bag comparison — under the race detector,
# -count=2 for state reuse across re-Open, with the spill-leak check
# (delegated batch operators spill through the row path).
batch:
	@dir=$$(mktemp -d) && \
	TMPDIR=$$dir $(GO) test -race -count=2 -run 'Batch|Ownership|Metamorphic' \
		./internal/exec ./internal/optimizer && \
	leaked=$$(find $$dir -name 'ojspill-*' | wc -l) && \
	rm -rf $$dir && \
	if [ $$leaked -ne 0 ]; then echo "batch: $$leaked run files leaked"; exit 1; fi

# Each fuzz target runs for a short budget; extend FUZZTIME for real runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz='FuzzExpr$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzPred$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzExprGraph$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/lang
	$(GO) test -fuzz='FuzzFingerprint$$' -fuzztime=$(FUZZTIME) ./internal/plancache
	$(GO) test -fuzz='FuzzReadCSV$$' -fuzztime=$(FUZZTIME) ./internal/storage
	$(GO) test -fuzz='FuzzTableLiteral$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzValue$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzBytes$$' -fuzztime=$(FUZZTIME) ./internal/parse
	$(GO) test -fuzz='FuzzProtocol$$' -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -fuzz='FuzzJoinTree$$' -fuzztime=$(FUZZTIME) ./internal/optimizer

# Quick fuzz smoke for check/CI: a few seconds each on the pipeline
# targets (parser front half, plan-cache fingerprint invariance, the
# full protocol dispatch surface) catches gross regressions without the
# full fuzz budget.
SMOKETIME ?= 5s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzParse$$' -fuzztime=$(SMOKETIME) ./internal/parse
	$(GO) test -run='^$$' -fuzz='FuzzFingerprint$$' -fuzztime=$(SMOKETIME) ./internal/plancache
	$(GO) test -run='^$$' -fuzz='FuzzProtocol$$' -fuzztime=$(SMOKETIME) ./internal/server
	$(GO) test -run='^$$' -fuzz='FuzzJoinTree$$' -fuzztime=$(SMOKETIME) ./internal/optimizer

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt cpu.prof mem.prof freejoin.test
