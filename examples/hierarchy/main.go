// Hierarchy: the paper's [SCHO87]/[OZSO89] motivation — obtaining "a
// relational (flattened) representation of a hierarchy where some parent
// instances have no children". A three-level org hierarchy (division →
// department → team) flattens into one relation through an outerjoin
// chain, so divisions without departments and departments without teams
// still appear. The chain is freely reorderable, and all of its
// implementing trees verifiably agree.
package main

import (
	"fmt"
	"log"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func main() {
	db := expr.DB{
		"Div": relation.FromRows("Div", []string{"id", "name"},
			[]any{1, "Products"},
			[]any{2, "Research"}, // no departments: must survive flattening
		),
		"Dept": relation.FromRows("Dept", []string{"div", "id", "name"},
			[]any{1, 10, "Databases"},
			[]any{1, 11, "Compilers"}, // no teams: must survive flattening
		),
		"Team": relation.FromRows("Team", []string{"dept", "name"},
			[]any{10, "optimizer"},
			[]any{10, "storage"},
		),
	}

	// Div -> Dept -> Team: the flattened hierarchy.
	q := expr.NewOuter(
		expr.NewOuter(expr.NewLeaf("Div"), expr.NewLeaf("Dept"),
			predicate.Eq(relation.A("Div", "id"), relation.A("Dept", "div"))),
		expr.NewLeaf("Team"),
		predicate.Eq(relation.A("Dept", "id"), relation.A("Team", "dept")))

	fmt.Println("flattening query:", q)
	analysis, err := core.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis:", analysis)

	res, err := core.Verify(analysis.Graph, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implementing trees evaluated: %d — all equal: %v\n\n", res.ITCount, res.AllEqual)

	out, err := q.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("Research (childless division) and Compilers (teamless department)")
	fmt.Println("appear with null columns — the rows that motivated outerjoins in flattening.")
}
