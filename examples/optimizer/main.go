// Optimizer: the paper's Example 1 at scale. The freely-reorderable
// query R1 —[key] R2 →[key] R3 has two associations; with 1 row in R1,
// N rows in R2 and R3, and key indexes, the order determines whether the
// engine touches 3 tuples or ~2N+1.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"freejoin/internal/expr"
	"freejoin/internal/optimizer"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func main() {
	n := flag.Int("n", 500000, "rows in R2 and R3")
	flag.Parse()

	rnd := rand.New(rand.NewSource(1))
	cat := storage.NewCatalog()
	r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
	r1.AppendRaw([]relation.Value{relation.Int(int64(*n / 2)), relation.Int(0)})
	cat.AddRelation("R1", r1)
	cat.AddRelation("R2", workload.UniformRelation(rnd, "R2", *n, 1<<40))
	cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", *n, 1<<40))
	for _, t := range []string{"R2", "R3"} {
		tb, err := cat.Table(t)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tb.BuildHashIndex("a"); err != nil {
			log.Fatal(err)
		}
	}

	key := func(u, v string) predicate.Predicate {
		return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
	}
	// The user writes the expensive association: R1 - (R2 -> R3).
	q := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), key("R2", "R3")),
		key("R1", "R2"))
	fmt.Printf("user query: %s   (N = %d)\n\n", q, *n)

	o := optimizer.New(cat)

	show := func(label string, p *optimizer.Plan) {
		start := time.Now()
		out, c, err := o.Execute(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-22s rows=%d  tuples=%-9d time=%s\n",
			label, p.Tree(), out.Len(), c.TuplesRetrieved(), time.Since(start).Round(time.Microsecond))
	}

	fixed, err := o.PlanFixed(q)
	if err != nil {
		log.Fatal(err)
	}
	show("as written (fixed order):", fixed)

	opt, reordered, err := o.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	if !reordered {
		log.Fatal("query should be freely reorderable")
	}
	show("after free reordering:", opt)

	fmt.Printf("\nchosen plan:\n%s", opt.Explain())
	fmt.Println("paper's Example 1: the bad order retrieves 2N+1 tuples, the good one 3.")
}
