// Counts: the paper's [MURA89] motivation — Count queries need
// outerjoins. Counting employees per department over a plain join
// silently drops empty departments; over the (freely reorderable)
// outerjoin with COUNT over a non-null employee column it does not.
package main

import (
	"fmt"
	"log"

	"freejoin/internal/algebra"
	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func main() {
	db := expr.DB{
		"Dept": relation.FromRows("Dept", []string{"dno", "name"},
			[]any{1, "Engineering"}, []any{2, "Sales"}, []any{3, "Archives"}),
		"Emp": relation.FromRows("Emp", []string{"dno", "id"},
			[]any{1, 100}, []any{1, 101}, []any{2, 200}),
	}
	p := predicate.Eq(relation.A("Dept", "dno"), relation.A("Emp", "dno"))
	groupCols := []relation.Attr{relation.A("Dept", "dno"), relation.A("Dept", "name")}
	aggs := []algebra.Agg{{
		Kind: algebra.CountCol, Col: relation.A("Emp", "id"), As: relation.A("agg", "employees"),
	}}

	countOver := func(q *expr.Node) *relation.Relation {
		joined, err := q.Eval(db)
		if err != nil {
			log.Fatal(err)
		}
		out, err := algebra.GroupBy(joined, groupCols, aggs)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	join := expr.NewJoin(expr.NewLeaf("Dept"), expr.NewLeaf("Emp"), p)
	fmt.Println("COUNT over the plain join — Archives is silently missing:")
	fmt.Println(countOver(join))

	outer := expr.NewOuter(expr.NewLeaf("Dept"), expr.NewLeaf("Emp"), p)
	fmt.Println("COUNT(Emp.id) over Dept -> Emp — Archives counts 0:")
	fmt.Println(countOver(outer))

	// And the outerjoin block below the aggregate stays freely
	// reorderable, so an optimizer may still pick any join order.
	if ok, reason := core.FreelyReorderable(outer); !ok {
		log.Fatalf("unexpected: %s", reason)
	}
	fmt.Println("the outerjoin block under the aggregate is freely reorderable.")
}
