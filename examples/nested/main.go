// Nested: §5's language over the entity store. The From-list operators
// * (UnNest) and --> (Link) compile to outerjoins with strong OID
// predicates, so every query block is freely reorderable — here we run
// the paper's prosecutor query end to end.
package main

import (
	"fmt"
	"log"

	"freejoin/internal/core"
	"freejoin/internal/entity"
	"freejoin/internal/lang"
	"freejoin/internal/relation"
)

func main() {
	store := buildStore()

	query := `Select All
	From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit
	Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10`

	fmt.Println("query:")
	fmt.Println(query)

	parsed, err := lang.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := lang.Translate(store, parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nouterjoin form (§5.2):")
	fmt.Println("  ", tr.Block.StringWithPreds())
	fmt.Println("\nquery graph:")
	fmt.Print(tr.Graph)
	fmt.Println("\nanalysis:", tr.Analysis)

	// §5.3's observation, checked exhaustively: every implementing tree
	// of the block gives the same answer.
	res, err := core.Verify(tr.Graph, tr.DB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implementing trees evaluated: %d — all equal: %v\n\n", res.ITCount, res.AllEqual)

	out, err := tr.Eval()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func buildStore() *entity.Store {
	s := entity.NewStore()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(s.Define(entity.TypeDef{Name: "EMPLOYEE",
		Scalars: []string{"Name", "D#", "Rank"}, Sets: []string{"ChildName"}}))
	must(s.Define(entity.TypeDef{Name: "REPORT", Scalars: []string{"Title"}}))
	must(s.Define(entity.TypeDef{Name: "DEPARTMENT",
		Scalars: []string{"D#", "Location"},
		Refs:    map[string]string{"Manager": "EMPLOYEE", "Audit": "REPORT"}}))

	emp := func(name string, d, rank int64, kids ...string) entity.OID {
		oid, err := s.New("EMPLOYEE", map[string]relation.Value{
			"Name": relation.Str(name), "D#": relation.Int(d), "Rank": relation.Int(rank)})
		must(err)
		for _, k := range kids {
			must(s.AddToSet(oid, "ChildName", relation.Str(k)))
		}
		return oid
	}
	ana := emp("ana", 1, 12, "kim", "lee")
	emp("bo", 1, 4)
	emp("cruz", 2, 11, "max")

	rep, err := s.New("REPORT", map[string]relation.Value{"Title": relation.Str("audit-zurich")})
	must(err)
	d1, err := s.New("DEPARTMENT", map[string]relation.Value{
		"D#": relation.Int(1), "Location": relation.Str("Zurich")})
	must(err)
	must(s.SetRef(d1, "Manager", ana))
	must(s.SetRef(d1, "Audit", rep))
	d2, err := s.New("DEPARTMENT", map[string]relation.Value{
		"D#": relation.Int(2), "Location": relation.Str("Queretaro")})
	must(err)
	_ = d2 // no manager, no audit: Link still preserves the department
	return s
}
