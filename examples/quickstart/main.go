// Quickstart: build a three-relation join/outerjoin query, check the
// free-reorderability theorem, enumerate its implementing trees, and see
// them all evaluate to the same result — then see how the guarantee is
// lost on the paper's Example 2.
package main

import (
	"fmt"
	"log"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func main() {
	// A tiny database: customers, orders, and optional shipment records.
	db := expr.DB{
		"Cust": relation.FromRows("Cust", []string{"id", "name"},
			[]any{1, "ada"}, []any{2, "bob"}, []any{3, "eve"}),
		"Ord": relation.FromRows("Ord", []string{"cust", "oid"},
			[]any{1, 100}, []any{1, 101}, []any{2, 200}),
		"Ship": relation.FromRows("Ship", []string{"oid", "carrier"},
			[]any{100, "dhl"}),
	}

	// (Cust - Ord) -> Ship: customers with orders, shipments optional.
	q := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("Cust"), expr.NewLeaf("Ord"),
			predicate.Eq(relation.A("Cust", "id"), relation.A("Ord", "cust"))),
		expr.NewLeaf("Ship"),
		predicate.Eq(relation.A("Ord", "oid"), relation.A("Ship", "oid")))
	fmt.Println("query:", q.StringWithPreds())

	// 1. The theorem's preconditions.
	analysis, err := core.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis:", analysis)

	// 2. All implementing trees of the query graph.
	its, err := expr.EnumerateITs(analysis.Graph, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d implementing trees (modulo reversal):\n", len(its))
	for _, it := range its {
		fmt.Println("  ", it)
	}

	// 3. They all evaluate to the same relation.
	res, err := core.Verify(analysis.Graph, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d trees (both operand orders) agree: %v\n", res.ITCount, res.AllEqual)
	out, err := q.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresult:\n%v\n", out)

	// 4. Contrast: Example 2's shape Cust -> (Ord - Ship) is NOT freely
	// reorderable — the graph has an outerjoin pointing at the join core.
	bad := expr.NewOuter(expr.NewLeaf("Cust"),
		expr.NewJoin(expr.NewLeaf("Ord"), expr.NewLeaf("Ship"),
			predicate.Eq(relation.A("Ord", "oid"), relation.A("Ship", "oid"))),
		predicate.Eq(relation.A("Cust", "id"), relation.A("Ord", "cust")))
	ok, reason := core.FreelyReorderable(bad)
	fmt.Printf("Example-2 shape %s freely reorderable? %v\n  %s\n", bad, ok, reason)
}
