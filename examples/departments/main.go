// Departments: the paper's motivating workload — "when we want a listing
// of departments and their employees, we often want to see all
// departments, even those without employees". The outerjoin expresses it
// directly, the analysis proves the query block reorderable, and the
// optimizer picks the cheap order.
package main

import (
	"fmt"
	"log"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/optimizer"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

func main() {
	cat := storage.NewCatalog()
	cat.AddRelation("Dept", relation.FromRows("Dept", []string{"dno", "name"},
		[]any{1, "Engineering"},
		[]any{2, "Sales"},
		[]any{3, "Archives"}, // no employees: must still appear
	))
	cat.AddRelation("Emp", relation.FromRows("Emp", []string{"dno", "name", "badge"},
		[]any{1, "ada", 7001},
		[]any{1, "bob", 7002},
		[]any{2, "eve", 7003},
	))
	cat.AddRelation("Badge", relation.FromRows("Badge", []string{"badge", "issued"},
		[]any{7001, "2019"},
		[]any{7003, "2022"}, // bob's badge record is missing
	))
	for _, t := range []string{"Emp", "Badge"} {
		tb, err := cat.Table(t)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tb.BuildHashIndex("badge"); err != nil {
			log.Fatal(err)
		}
	}

	// Dept -> Emp -> Badge: all departments, employees if any, badge
	// records if any — an outerjoin chain, freely reorderable.
	q := expr.NewOuter(
		expr.NewOuter(expr.NewLeaf("Dept"), expr.NewLeaf("Emp"),
			predicate.Eq(relation.A("Dept", "dno"), relation.A("Emp", "dno"))),
		expr.NewLeaf("Badge"),
		predicate.Eq(relation.A("Emp", "badge"), relation.A("Badge", "badge")))

	fmt.Println("query:", q)
	if ok, reason := core.FreelyReorderable(q); !ok {
		log.Fatalf("unexpectedly not reorderable: %s", reason)
	}
	fmt.Println("freely reorderable: yes (outerjoin chain, strong key predicates)")

	o := optimizer.New(cat)
	plan, reordered, err := o.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer (reordered=%v) chose: %s\n%s", reordered, plan.Tree(), plan.Explain())

	out, counters, err := o.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuples retrieved: %d\n\n", counters.TuplesRetrieved())
	fmt.Println(out)
	fmt.Println("note: Archives appears with null employee columns, and bob with a null badge record —")
	fmt.Println("the rows a plain join would silently drop.")
}
