package main

import (
	"os"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment with a tiny
// configuration, with stdout diverted — a smoke test that the harness
// regenerating EXPERIMENTS.md cannot rot.
func TestAllExperimentsRun(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	saved := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = saved }()

	cfg := config{n: 5000, trials: 8, seed: 1990}
	if len(registry) < 19 {
		t.Fatalf("registry has %d experiments, want >= 19", len(registry))
	}
	for _, e := range registry {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(cfg); err != nil {
				t.Fatalf("%s (%s): %v", e.id, e.title, err)
			}
		})
	}
}

func TestExpOrder(t *testing.T) {
	if expOrder("E2") >= expOrder("E10") {
		t.Error("numeric experiment ordering broken")
	}
}
