package main

import (
	"fmt"
	"math/rand"
	"time"

	"freejoin/internal/expr"
	"freejoin/internal/optimizer"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func init() {
	register("E1", "Example 1 — reordering cuts tuples retrieved from ~2N+1 to 3", runE1)
	register("E2", "Example 1 follow-up — outerjoin-first wins under a non-selective join", runE2)
	register("E15", "Optimizer value — DP reordering vs fixed order on chain workloads", runE15)
	register("E16", "Plan-space size — implementing trees per topology", runE16)
}

// example1Catalog builds R1 (1 row), R2, R3 (n rows, key column "a"
// indexed) with R1.a matching one R2 key and R2.a = R3.a keys.
func example1Catalog(n int) *storage.Catalog {
	rnd := rand.New(rand.NewSource(1))
	cat := storage.NewCatalog()
	r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
	r1.AppendRaw([]relation.Value{relation.Int(int64(n / 2)), relation.Int(0)})
	cat.AddRelation("R1", r1)
	cat.AddRelation("R2", workload.UniformRelation(rnd, "R2", n, 1<<40))
	cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", n, 1<<40))
	for _, t := range []string{"R2", "R3"} {
		tb, _ := cat.Table(t)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			panic(err)
		}
	}
	return cat
}

func eqKey(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

func runPlan(o *optimizer.Optimizer, p *optimizer.Plan) (rows int, retrieved int64, d time.Duration, err error) {
	start := time.Now()
	out, c, err := o.Execute(p)
	if err != nil {
		return 0, 0, 0, err
	}
	return out.Len(), c.TuplesRetrieved(), time.Since(start), nil
}

func runE1(cfg config) error {
	n := cfg.n
	cat := example1Catalog(n)
	o := optimizer.New(cat)

	// The paper's two associations of the freely reorderable query
	// R1 —[key] R2 →[key] R3.
	outerFirst := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), eqKey("R2", "R3")),
		eqKey("R1", "R2"))
	joinFirst := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R1"), expr.NewLeaf("R2"), eqKey("R1", "R2")),
		expr.NewLeaf("R3"), eqKey("R2", "R3"))

	fmt.Printf("N = %d rows in R2 and R3; R1 has 1 row; key indexes on R2.a, R3.a\n\n", n)
	fmt.Printf("%-34s %12s %12s %12s\n", "plan", "rows", "tuples", "time")

	for _, tc := range []struct {
		name string
		q    *expr.Node
	}{
		{"fixed: R1 - (R2 -> R3)  [paper bad]", outerFirst},
		{"fixed: (R1 - R2) -> R3  [paper good]", joinFirst},
	} {
		p, err := o.PlanFixed(tc.q)
		if err != nil {
			return err
		}
		rows, got, d, err := runPlan(o, p)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %12d %12d %12s\n", tc.name, rows, got, d.Round(time.Microsecond))
	}

	p, tr, err := o.OptimizeTrace(outerFirst)
	if err != nil {
		return err
	}
	rows, got, d, err := runPlan(o, p)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %12d %12d %12s\n", "optimizer (DP over the graph)", rows, got, d.Round(time.Microsecond))
	fmt.Printf("\nreordered=%v, chosen plan: %s\n", tr.Reordered(), p.Tree())

	_, _, text, err := o.ExplainAnalyze(p, tr)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-operator breakdown (EXPLAIN ANALYZE of the chosen plan):\n%s", text)
	fmt.Printf("\npaper: bad order retrieves 2N+1, good order 3 (shape check, scaled N)\n")
	return nil
}

func runE2(cfg config) error {
	// Same reorderable shape, but the join predicate R1.b > R2.b is not
	// selective while the outerjoin predicate stays a key equijoin.
	// Sweeping the fraction of R2 rows passing the join shows the
	// crossover: when the join output explodes, doing the outerjoin first
	// becomes the better order — the paper's point that join-first is not
	// universally optimal.
	n := cfg.n / 10
	if n < 1000 {
		n = 1000
	}
	const r1Rows = 100
	fmt.Printf("N = %d, |R1| = %d; join predicate R1.b > R2.b with varying selectivity; outerjoin on keys\n", n, r1Rows)
	fmt.Printf("(intermediate = rows the second operator consumes)\n\n")
	fmt.Printf("%10s %15s %15s %12s %12s %12s\n",
		"join sel", "joinFirst mid", "outerFirst mid", "jf time", "of time", "winner")
	for _, selPerMille := range []int{1, 5, 10, 50, 250, 1000} {
		rnd := rand.New(rand.NewSource(2))
		cat := storage.NewCatalog()
		r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
		// r1Rows driving rows whose b admits selPerMille/1000 of R2: the
		// join output is |R1|·|R2|·sel, so a non-selective predicate
		// multiplies the work the later outerjoin must do.
		for i := 0; i < r1Rows; i++ {
			r1.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(int64(selPerMille))})
		}
		cat.AddRelation("R1", r1)
		r2 := relation.New(relation.SchemeOf("R2", "a", "b"))
		for i := 0; i < n; i++ {
			r2.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(rnd.Int63n(1000))})
		}
		cat.AddRelation("R2", r2)
		cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", n, 1<<40))
		for _, t := range []string{"R2", "R3"} {
			tb, _ := cat.Table(t)
			if _, err := tb.BuildHashIndex("a"); err != nil {
				return err
			}
		}
		o := optimizer.New(cat)
		gt := predicate.Cmp(predicate.GtOp,
			predicate.Col(relation.A("R1", "b")), predicate.Col(relation.A("R2", "b")))

		joinFirst := expr.NewOuter(
			expr.NewJoin(expr.NewLeaf("R1"), expr.NewLeaf("R2"), gt),
			expr.NewLeaf("R3"), eqKey("R2", "R3"))
		outerFirst := expr.NewJoin(expr.NewLeaf("R1"),
			expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), eqKey("R2", "R3")),
			gt)

		// The discriminating quantity is the size of the intermediate
		// result the second operator must consume.
		interJoin, err := joinFirst.Left.Eval(cat)
		if err != nil {
			return err
		}
		interOuter, err := outerFirst.Right.Eval(cat)
		if err != nil {
			return err
		}
		pj, err := o.PlanFixed(joinFirst)
		if err != nil {
			return err
		}
		_, _, dj, err := runPlan(o, pj)
		if err != nil {
			return err
		}
		po, err := o.PlanFixed(outerFirst)
		if err != nil {
			return err
		}
		_, _, do, err := runPlan(o, po)
		if err != nil {
			return err
		}
		winner := "join first"
		if do < dj {
			winner = "outer first"
		}
		fmt.Printf("%8.1f%% %15d %15d %12s %12s %12s\n", float64(selPerMille)/10,
			interJoin.Len(), interOuter.Len(),
			dj.Round(time.Microsecond), do.Round(time.Microsecond), winner)
	}
	fmt.Println("\npaper: \"the optimal strategy in this case is to do the outerjoin first\"")
	return nil
}

func runE15(cfg config) error {
	// Chains: join core of k relations with an outerjoin tail, tables of
	// decreasing size so that order matters. Compare the user's
	// right-deep order (fixed) with the DP optimizer.
	fmt.Printf("%8s %22s %22s %8s\n", "chain n", "fixed tuples", "optimized tuples", "gain")
	for _, n := range []int{3, 4, 5, 6} {
		g := workload.CoreWithTreesGraph(n-1, 1)
		rnd := rand.New(rand.NewSource(3))
		cat := storage.NewCatalog()
		// Sizes descending: A biggest ... so the worst order starts big.
		nodes := g.Nodes()
		for i, node := range nodes {
			size := cfg.n / 100
			if size < 100 {
				size = 100
			}
			size = size / (1 << i)
			if size < 10 {
				size = 10
			}
			cat.AddRelation(node, workload.UniformRelation(rnd, node, size, 1<<30))
			tb, _ := cat.Table(node)
			if _, err := tb.BuildHashIndex("a"); err != nil {
				return err
			}
		}
		o := optimizer.New(cat)
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			return err
		}
		// Fixed plan: the worst-cost IT (a pessimal user ordering).
		var worst *optimizer.Plan
		for _, it := range its {
			p, err := o.PlanFixed(it)
			if err != nil {
				return err
			}
			if worst == nil || p.Cost > worst.Cost {
				worst = p
			}
		}
		_, tf, _, err := runPlan(o, worst)
		if err != nil {
			return err
		}
		opt, tr, err := o.OptimizeGraphTrace(g)
		if err != nil {
			return err
		}
		_, to, _, err := runPlan(o, opt)
		if err != nil {
			return err
		}
		gain := float64(tf) / float64(to)
		fmt.Printf("%8d %22d %22d %7.1fx\n", n, tf, to, gain)
		if n == 6 {
			_, _, text, err := o.ExplainAnalyze(opt, tr)
			if err != nil {
				return err
			}
			fmt.Printf("\nper-operator breakdown of the optimized chain-%d plan:\n%s\n", n, text)
		}
	}
	fmt.Println("\npaper §6.1: freely-reorderable queries need no extra analysis — the DP just fills in join or outerjoin")
	return nil
}

func init() {
	register("E20", "Section 4 pipeline — simplify + pushdown + DP on restricted queries", runE20)
}

func runE20(cfg config) error {
	n := cfg.n / 10
	if n < 1000 {
		n = 1000
	}
	rnd := rand.New(rand.NewSource(4))
	cat := storage.NewCatalog()
	for _, name := range []string{"R", "S", "T"} {
		cat.AddRelation(name, workload.UniformRelation(rnd, name, n, 1<<40))
		tb, _ := cat.Table(name)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			return err
		}
	}
	o := optimizer.New(cat)

	// σ[S.a = k](R -> (S -> T)): the restriction is strong on the
	// null-supplied S, so §4 converts both outerjoins; pushdown then
	// sinks it onto S's scan, and the DP drives the join from the 1-row
	// filtered S.
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"),
			expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"), eqKey("S", "T")),
			eqKey("R", "S")),
		predicate.EqConst(relation.A("S", "a"), relation.Int(int64(n/2))))
	fmt.Printf("query: sigma[S.a = %d](R -> (S -> T)),  N = %d per table, key indexes\n\n", n/2, n)

	naive, err := o.PlanFixed(q.Left) // the block as written...
	if err != nil {
		return err
	}
	naivePlan := naiveFilterPlan(o, naive, q.Pred)
	rows, got, d, err := runPlan(o, naivePlan)
	if err != nil {
		return err
	}
	fmt.Printf("%-44s rows=%d tuples=%-9d time=%s\n", "naive (filter atop fixed order):", rows, got, d.Round(time.Microsecond))

	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return err
	}
	rows, got, d, err = runPlan(o, p)
	if err != nil {
		return err
	}
	fmt.Printf("%-44s rows=%d tuples=%-9d time=%s\n",
		fmt.Sprintf("PlanQuery (reordered=%v): %s", tr.Reordered(), p.Tree()), rows, got, d.Round(time.Microsecond))

	_, _, text, err := o.ExplainAnalyze(p, tr)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-operator breakdown of the pipeline plan:\n%s", text)
	fmt.Println("\npaper §4: simplify before graph creation, \"do restrictions as early as possible\"")
	return nil
}

// naiveFilterPlan wraps a plan with a filter the way a non-§4 planner
// would: evaluate the block as written, filter at the end.
func naiveFilterPlan(o *optimizer.Optimizer, child *optimizer.Plan, pred predicate.Predicate) *optimizer.Plan {
	return &optimizer.Plan{
		Op: expr.Restrict, Left: child, Pred: pred,
		Scheme: child.Scheme, EstRows: child.EstRows / 3,
		Cost: child.Cost + child.EstRows,
	}
}

func runE16(cfg config) error {
	fmt.Printf("%-24s %8s %20s %20s\n", "topology", "n", "ITs (mod reversal)", "ITs (full)")
	for n := 2; n <= 10; n++ {
		g := workload.JoinChainGraph(n)
		m, _ := expr.CountITs(g, true)
		f, _ := expr.CountITs(g, false)
		fmt.Printf("%-24s %8d %20d %20d\n", "join chain", n, m, f)
	}
	for n := 2; n <= 8; n++ {
		g := workload.StarGraph(n - 1)
		m, _ := expr.CountITs(g, true)
		f, _ := expr.CountITs(g, false)
		fmt.Printf("%-24s %8d %20d %20d\n", "join star", n, m, f)
	}
	for n := 2; n <= 10; n++ {
		g := workload.OuterChainGraph(n)
		m, _ := expr.CountITs(g, true)
		f, _ := expr.CountITs(g, false)
		fmt.Printf("%-24s %8d %20d %20d\n", "outerjoin chain", n, m, f)
	}
	for n := 4; n <= 10; n += 2 {
		g := workload.CoreWithTreesGraph(n/2, n-n/2)
		m, _ := expr.CountITs(g, true)
		f, _ := expr.CountITs(g, false)
		fmt.Printf("%-24s %8d %20d %20d\n", "core+outer tail", n, m, f)
	}
	return nil
}
