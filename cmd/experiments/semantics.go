package main

import (
	"fmt"
	"math/rand"

	"freejoin/internal/algebra"
	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

func init() {
	register("E3", "Example 2 — same graph, different results (non-associativity)", runE3)
	register("E4", "Example 3 — non-strong predicates break identity 12", runE4)
	register("E5", "Identities 1-10 — randomized verification", runE5)
	register("E6", "Identities 11-13 — outerjoin reassociation under strongness", runE6)
	register("E7", "Figure 1 — expression tree vs query graph", runE7)
	register("E8", "Figure 2 — a nice topology", runE8)
	register("E9", "Lemma 1 — definitional and forbidden-pattern niceness agree", runE9)
	register("E10", "Theorem 1 — all implementing trees of nice graphs agree", runE10)
	register("E11", "Lemma 3 — basic transforms reach every implementing tree", runE11)
	register("E12", "Section 4 — strong restrictions simplify outerjoins to joins", runE12)
	register("E14", "Identities 15-16 — generalized outerjoin reassociation", runE14)
}

func runE3(cfg config) error {
	r1 := relation.FromRows("R1", []string{"a"}, []any{1})
	r2 := relation.FromRows("R2", []string{"b"}, []any{1})
	r3 := relation.FromRows("R3", []string{"c"}, []any{99})
	db := expr.DB{"R1": r1, "R2": r2, "R3": r3}

	pOJ := predicate.Eq(relation.A("R1", "a"), relation.A("R2", "b"))
	pJN := predicate.Eq(relation.A("R2", "b"), relation.A("R3", "c"))
	lhs := expr.NewOuter(expr.NewLeaf("R1"),
		expr.NewJoin(expr.NewLeaf("R2"), expr.NewLeaf("R3"), pJN), pOJ)
	rhs := expr.NewJoin(expr.NewOuter(expr.NewLeaf("R1"), expr.NewLeaf("R2"), pOJ),
		expr.NewLeaf("R3"), pJN)

	g, err := expr.GraphOf(lhs)
	if err != nil {
		return err
	}
	fmt.Println("query graph (shared by both expressions):")
	fmt.Print(g)
	a := core.AnalyzeGraph(g)
	fmt.Println("analysis:", a)

	for _, tc := range []struct {
		name string
		q    *expr.Node
	}{{"R1 -> (R2 - R3)", lhs}, {"(R1 -> R2) - R3", rhs}} {
		out, err := tc.q.Eval(db)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s =\n%v", tc.name, out)
	}
	fmt.Println("\npaper: the first yields {(r1, -, -)}, the second the empty set")
	return nil
}

func runE4(cfg config) error {
	a := relation.FromRows("A", []string{"a"}, []any{1})
	b := relation.FromRows("B", []string{"b1", "b2"}, []any{2, nil})
	c := relation.FromRows("C", []string{"c"}, []any{3})

	pab := predicate.Eq(relation.A("A", "a"), relation.A("B", "b1"))
	pbc := predicate.NewOr(
		predicate.Eq(relation.A("B", "b2"), relation.A("C", "c")),
		predicate.NewIsNull(relation.A("B", "b2")))
	fmt.Printf("P_ab = %v\nP_bc = %v\n", pab, pbc)
	fmt.Printf("P_bc strong w.r.t. B? %v\n\n",
		predicate.StrongWRTScheme(pbc, b.Scheme()))

	oj := func(l, r *relation.Relation, p predicate.Predicate) *relation.Relation {
		out, err := algebra.LeftOuterJoin(l, r, p)
		if err != nil {
			panic(err)
		}
		return out
	}
	lhs := oj(oj(a, b, pab), c, pbc)
	rhs := oj(a, oj(b, c, pbc), pab)
	fmt.Printf("(A -> B) -> C =\n%v\n", lhs)
	fmt.Printf("A -> (B -> C) =\n%v\n", rhs)
	fmt.Println("identity 12 fails: the two associations differ because P_bc accepts all-null B")
	return nil
}

func runE5(cfg config) error {
	// The full identity suite lives in internal/algebra's tests; here we
	// re-run a representative randomized pass and report the counts.
	rnd := rand.New(rand.NewSource(cfg.seed))
	pass := 0
	for trial := 0; trial < cfg.trials*3; trial++ {
		x := workload.RandomRelation(rnd, "X", 6)
		y := workload.RandomRelation(rnd, "Y", 6)
		z := workload.RandomRelation(rnd, "Z", 6)
		pxy := workload.RandomPredicate(rnd, "X", "Y")
		pyz := workload.RandomPredicate(rnd, "Y", "Z")

		// Identity 1 (associativity).
		l1a, _ := algebra.Join(x, y, pxy)
		l1, _ := algebra.Join(l1a, z, pyz)
		r1a, _ := algebra.Join(y, z, pyz)
		r1, _ := algebra.Join(x, r1a, pxy)
		if !l1.EqualBag(r1) {
			return fmt.Errorf("identity 1 violated at trial %d", trial)
		}
		// Identity 10 (outerjoin expansion).
		l10, _ := algebra.LeftOuterJoin(x, y, pxy)
		jn, _ := algebra.Join(x, y, pxy)
		aj, _ := algebra.Antijoin(x, y, pxy)
		r10, _ := algebra.Union(jn, aj)
		if !l10.EqualBag(r10) {
			return fmt.Errorf("identity 10 violated at trial %d", trial)
		}
		pass++
	}
	fmt.Printf("identities 1 and 10 verified on %d random databases (full suite: go test ./internal/algebra)\n", pass)
	return nil
}

func runE6(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 1))
	pass := 0
	for trial := 0; trial < cfg.trials*3; trial++ {
		x := workload.RandomRelation(rnd, "X", 6)
		y := workload.RandomRelation(rnd, "Y", 6)
		z := workload.RandomRelation(rnd, "Z", 6)
		pxy := workload.RandomPredicate(rnd, "X", "Y")
		pyz := workload.RandomPredicate(rnd, "Y", "Z")
		// Identity 12 with strong predicates.
		la, _ := algebra.LeftOuterJoin(x, y, pxy)
		l, _ := algebra.LeftOuterJoin(la, z, pyz)
		ra, _ := algebra.LeftOuterJoin(y, z, pyz)
		r, _ := algebra.LeftOuterJoin(x, ra, pxy)
		if !l.EqualBag(r) {
			return fmt.Errorf("identity 12 violated at trial %d", trial)
		}
		pass++
	}
	fmt.Printf("identity 12 verified on %d random databases with strong predicates\n", pass)

	// And a found counterexample without strongness.
	rnd = rand.New(rand.NewSource(cfg.seed + 2))
	for trial := 0; ; trial++ {
		if trial > 5000 {
			return fmt.Errorf("no counterexample found")
		}
		x := workload.RandomRelation(rnd, "X", 4)
		y := workload.RandomRelation(rnd, "Y", 4)
		z := workload.RandomRelation(rnd, "Z", 4)
		pxy := workload.RandomPredicate(rnd, "X", "Y")
		pyz := workload.NonStrongPredicate("Z", "Y")
		la, _ := algebra.LeftOuterJoin(x, y, pxy)
		l, _ := algebra.LeftOuterJoin(la, z, pyz)
		ra, _ := algebra.LeftOuterJoin(y, z, pyz)
		r, _ := algebra.LeftOuterJoin(x, ra, pxy)
		if !l.EqualBag(r) {
			fmt.Printf("counterexample found at trial %d with non-strong %v: |LHS|=%d |RHS|=%d\n",
				trial, pyz, l.Len(), r.Len())
			break
		}
	}
	return nil
}

func runE7(cfg config) error {
	q := expr.NewOuter(
		expr.NewJoin(
			expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"),
				predicate.Eq(relation.A("R", "a"), relation.A("S", "a"))),
			expr.NewLeaf("T"),
			predicate.Eq(relation.A("S", "a"), relation.A("T", "a"))),
		expr.NewLeaf("U"),
		predicate.Eq(relation.A("T", "a"), relation.A("U", "a")))
	fmt.Println("expression tree:", q.StringWithPreds())
	g, err := expr.GraphOf(q)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(g)
	fmt.Println()
	fmt.Print(g.DOT())
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		return err
	}
	fmt.Printf("implementing trees (modulo reversal): %d\n", len(its))
	for _, it := range its {
		fmt.Println("  ", it)
	}
	fmt.Println("note: no tree joins R and T directly — the graph has no R-T edge")
	return nil
}

func runE8(cfg config) error {
	g := graph.New()
	je := func(u, v string) {
		_ = g.AddJoinEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a")))
	}
	oe := func(u, v string) {
		_ = g.AddOuterEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a")))
	}
	je("R", "S")
	je("S", "T")
	je("T", "U")
	je("U", "R")
	je("S", "U")
	oe("R", "V")
	oe("V", "W")
	oe("V", "X")
	oe("T", "Y")
	fmt.Print(g)
	ok1, _ := g.IsNiceLemma1()
	ok2, _ := g.IsNiceDefinitional()
	fmt.Printf("nice (Lemma 1 form):     %v\n", ok1)
	fmt.Printf("nice (definitional form): %v\n", ok2)
	c, _ := expr.CountITs(g, true)
	fmt.Printf("implementing trees (modulo reversal): %d\n", c)
	return nil
}

func runE9(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 3))
	nice, notNice := 0, 0
	for trial := 0; trial < cfg.trials*50; trial++ {
		g := workload.RandomConnectedGraph(rnd, 2+rnd.Intn(6))
		ok1, _ := g.IsNiceLemma1()
		ok2, _ := g.IsNiceDefinitional()
		if ok1 != ok2 {
			return fmt.Errorf("checkers disagree on\n%v", g)
		}
		if ok1 {
			nice++
		} else {
			notNice++
		}
	}
	fmt.Printf("checked %d random connected graphs: %d nice, %d not nice, 0 disagreements\n",
		nice+notNice, nice, notNice)
	return nil
}

func runE10(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 4))
	graphs, trees := 0, 0
	for trial := 0; trial < cfg.trials; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		db := workload.RandomDB(rnd, g, 5)
		res, err := core.Verify(g, db)
		if err != nil {
			return err
		}
		if !res.AllEqual {
			return fmt.Errorf("THEOREM VIOLATION on\n%v", g)
		}
		graphs++
		trees += res.ITCount
	}
	fmt.Printf("verified %d random nice graphs / %d implementing trees: all evaluations agree\n", graphs, trees)

	// Negative control: the Example 2 graph admits differing trees.
	g := graph.New()
	_ = g.AddOuterEdge("X", "Y", predicate.Eq(relation.A("X", "a"), relation.A("Y", "a")))
	_ = g.AddJoinEdge("Y", "Z", predicate.Eq(relation.A("Y", "a"), relation.A("Z", "a")))
	for trial := 0; ; trial++ {
		if trial > 2000 {
			return fmt.Errorf("no counterexample for the non-nice graph")
		}
		db := workload.RandomDB(rnd, g, 4)
		res, err := core.Verify(g, db)
		if err != nil {
			return err
		}
		if !res.AllEqual {
			fmt.Printf("negative control (X -> Y - Z): differing trees found, e.g. %s vs %s\n",
				res.WitnessA, res.WitnessB)
			break
		}
	}
	return nil
}

func runE11(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 5))
	checked := 0
	for trial := 0; trial < cfg.trials; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		all, err := expr.EnumerateITs(g, false)
		if err != nil {
			return err
		}
		if len(all) > 300 {
			continue
		}
		cl, err := expr.Closure(all[rnd.Intn(len(all))], 5000)
		if err != nil {
			return err
		}
		if len(cl) != len(all) {
			return fmt.Errorf("closure %d != IT set %d on\n%v", len(cl), len(all), g)
		}
		checked++
	}
	fmt.Printf("on %d random nice graphs, the BT closure of a random IT equals the full IT set\n", checked)
	return nil
}

func runE12(cfg config) error {
	q, err := parseExample12()
	if err != nil {
		return err
	}
	fmt.Println("query: ", q.StringWithPreds())
	simplified, n := core.Simplify(q, core.SimplifyOptions{})
	fmt.Println("after §4 simplification:", simplified.StringWithPreds())
	fmt.Printf("outerjoins converted to joins: %d\n", n)

	// The §4 referential-integrity warning.
	ri := expr.NewOuter(expr.NewLeaf("R1"),
		expr.NewJoin(expr.NewLeaf("R2"), expr.NewLeaf("R3"),
			predicate.Eq(relation.A("R2", "a"), relation.A("R3", "a"))),
		predicate.Eq(relation.A("R1", "a"), relation.A("R2", "a")))
	ok, reason := core.FreelyReorderable(ri)
	fmt.Printf("\nRI rewrite R1 -> (R2 - R3): freely reorderable? %v (%s)\n", ok, reason)
	return nil
}

func parseExample12() (*expr.Node, error) {
	// σ[T.a = 1](R -> (S -> T)): the strong restriction converts both
	// outerjoins.
	inner := expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"),
		predicate.Eq(relation.A("S", "a"), relation.A("T", "a")))
	q := expr.NewOuter(expr.NewLeaf("R"), inner,
		predicate.Eq(relation.A("R", "a"), relation.A("S", "a")))
	return expr.NewRestrict(q, predicate.EqConst(relation.A("T", "a"), relation.Int(1))), nil
}

func runE14(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 6))
	pass := 0
	for trial := 0; trial < cfg.trials*3; trial++ {
		x := workload.RandomRelation(rnd, "X", 6).Dedup()
		y := workload.RandomRelation(rnd, "Y", 6).Dedup()
		z := workload.RandomRelation(rnd, "Z", 6).Dedup()
		pxy := workload.RandomPredicate(rnd, "X", "Y")
		pyz := workload.RandomPredicate(rnd, "Y", "Z")
		// Identity 15.
		jyz, _ := algebra.Join(y, z, pyz)
		lhs, _ := algebra.LeftOuterJoin(x, jyz, pxy)
		ojxy, _ := algebra.LeftOuterJoin(x, y, pxy)
		rhs, err := algebra.GeneralizedOuterJoin(ojxy, z, pyz, x.Scheme().Attrs())
		if err != nil {
			return err
		}
		if !lhs.EqualBag(rhs) {
			return fmt.Errorf("identity 15 violated at trial %d", trial)
		}
		pass++
	}
	fmt.Printf("identity 15 (X OJ (Y JN Z) = (X OJ Y) GOJ[sch(X)] Z) verified on %d random duplicate-free databases\n", pass)
	fmt.Println("identity 16 and the GOJ/Dayal refinement are covered by go test ./internal/algebra ./internal/core")
	return nil
}
