// Command experiments regenerates every experiment in EXPERIMENTS.md —
// the paper's worked examples, figures, identities and the derived cost
// studies — printing one section per experiment id (E1..E16).
//
// Usage:
//
//	experiments              # run everything
//	experiments -e E1,E15    # run a subset
//	experiments -n 100000    # table size for the cost experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config) error
}

type config struct {
	n      int // base-table size for cost experiments
	trials int // randomized trials for property experiments
	seed   int64
}

var registry []experiment

func register(id, title string, run func(config) error) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	var (
		only   = flag.String("e", "", "comma-separated experiment ids (default: all)")
		n      = flag.Int("n", 100000, "table size for cost experiments")
		trials = flag.Int("trials", 60, "randomized trials for property experiments")
		seed   = flag.Int64("seed", 1990, "random seed")
	)
	flag.Parse()
	cfg := config{n: *n, trials: *trials, seed: *seed}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	sort.SliceStable(registry, func(i, j int) bool { return expOrder(registry[i].id) < expOrder(registry[j].id) })
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.title)
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched; known ids:")
		for _, e := range registry {
			fmt.Fprintf(os.Stderr, "  %s  %s\n", e.id, e.title)
		}
		os.Exit(2)
	}
}

// expOrder sorts E2 before E10.
func expOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}
