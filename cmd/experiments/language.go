package main

import (
	"fmt"

	"freejoin/internal/core"
	"freejoin/internal/entity"
	"freejoin/internal/lang"
	"freejoin/internal/relation"
)

func init() {
	register("E13", "Section 5 — UnNest/Link query blocks are freely reorderable", runE13)
}

// section5Store builds the paper's §5 database.
func section5Store() (*entity.Store, error) {
	s := entity.NewStore()
	for _, def := range []entity.TypeDef{
		{Name: "EMPLOYEE", Scalars: []string{"Name", "D#", "Rank"}, Sets: []string{"ChildName"}},
		{Name: "REPORT", Scalars: []string{"Title"}},
		{Name: "DEPARTMENT", Scalars: []string{"D#", "Location"},
			Refs: map[string]string{"Manager": "EMPLOYEE", "Audit": "REPORT"}},
	} {
		if err := s.Define(def); err != nil {
			return nil, err
		}
	}
	emp := func(name string, d, rank int64, kids ...string) entity.OID {
		oid, _ := s.New("EMPLOYEE", map[string]relation.Value{
			"Name": relation.Str(name), "D#": relation.Int(d), "Rank": relation.Int(rank)})
		for _, k := range kids {
			_ = s.AddToSet(oid, "ChildName", relation.Str(k))
		}
		return oid
	}
	ana := emp("ana", 1, 12, "kim", "lee")
	emp("bo", 1, 4)
	cruz := emp("cruz", 2, 11, "max")
	rep, _ := s.New("REPORT", map[string]relation.Value{"Title": relation.Str("audit-zurich")})
	dept := func(d int64, loc string, mgr, audit entity.OID) {
		oid, _ := s.New("DEPARTMENT", map[string]relation.Value{
			"D#": relation.Int(d), "Location": relation.Str(loc)})
		if mgr != 0 {
			_ = s.SetRef(oid, "Manager", mgr)
		}
		if audit != 0 {
			_ = s.SetRef(oid, "Audit", audit)
		}
	}
	dept(1, "Zurich", ana, rep)
	dept(2, "Queretaro", cruz, 0)
	dept(3, "Boston", 0, 0)
	return s, nil
}

func runE13(cfg config) error {
	store, err := section5Store()
	if err != nil {
		return err
	}
	queries := []string{
		`Select All From EMPLOYEE*ChildName, DEPARTMENT
		 Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'`,
		`Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.Location = 'Zurich'`,
		`Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit
		 Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10`,
	}
	for i, src := range queries {
		fmt.Printf("--- query %d ---\n%s\n\n", i+1, src)
		q, err := lang.Parse(src)
		if err != nil {
			return err
		}
		tr, err := lang.Translate(store, q)
		if err != nil {
			return err
		}
		fmt.Println("outerjoin form:", tr.Block.StringWithPreds())
		fmt.Println("analysis:      ", tr.Analysis)
		res, err := core.Verify(tr.Graph, tr.DB)
		if err != nil {
			return err
		}
		fmt.Printf("implementing trees evaluated: %d, all equal: %v\n", res.ITCount, res.AllEqual)
		out, err := tr.Eval()
		if err != nil {
			return err
		}
		fmt.Printf("result:\n%v\n", out)
	}
	return nil
}
