package main

import (
	"fmt"
	"math/rand"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/optimizer"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

// optimizerNew is a local alias keeping runE19 readable.
func optimizerNew(cat *storage.Catalog) *optimizer.Optimizer { return optimizer.New(cat) }

// newExample2Catalog builds the 1-row X / N-row Y, Z catalog with key
// indexes used by E19.
func newExample2Catalog(rnd *rand.Rand, n int) *storage.Catalog {
	cat := storage.NewCatalog()
	x := relation.New(relation.SchemeOf("X", "a", "b"))
	x.AppendRaw([]relation.Value{relation.Int(int64(n / 2)), relation.Int(0)})
	cat.AddRelation("X", x)
	cat.AddRelation("Y", workload.UniformRelation(rnd, "Y", n, 1<<40))
	cat.AddRelation("Z", workload.UniformRelation(rnd, "Z", n, 1<<40))
	for _, tn := range []string{"Y", "Z"} {
		tb, _ := cat.Table(tn)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			panic(err)
		}
	}
	return cat
}

func init() {
	register("E17", "Section 6.3 (implemented) — join/semijoin reorderability and its forbidden subgraphs", runE17)
	register("E18", "Section 6.3 (implemented) — tree-level conditions match graph niceness", runE18)
	register("E19", "Section 6.2 — GOJ reassociation lets the optimizer reorder Example 2", runE19)
}

func runE17(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 7))

	// Positive: random graphs satisfying the extended conditions.
	graphs, trees := 0, 0
	for trial := 0; trial < cfg.trials; trial++ {
		g := workload.RandomSemiGraph(rnd, 1+rnd.Intn(3), rnd.Intn(2), 1+rnd.Intn(2))
		if n, err := expr.CountITs(g, false); err != nil || n > 2048 {
			continue
		}
		db := workload.RandomDB(rnd, g, 5)
		res, err := core.Verify(g, db)
		if err != nil {
			return err
		}
		if !res.AllEqual {
			return fmt.Errorf("EXTENSION VIOLATION on\n%v", g)
		}
		graphs++
		trees += res.ITCount
	}
	fmt.Printf("positive: %d random nice-with-semijoin graphs / %d implementing trees — all valid and equal\n",
		graphs, trees)

	// Negative: the three forbidden patterns.
	eq := func(u, v string) predicate.Predicate {
		return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
	}
	series := graph.New()
	_ = series.AddSemiEdge("A", "B", eq("A", "B"))
	_ = series.AddSemiEdge("B", "C", eq("B", "C"))
	db := workload.RandomDB(rnd, series, 4)
	res, err := core.Verify(series, db)
	if err != nil {
		return err
	}
	fmt.Printf("\nsemijoin edges in series (A ~> B ~> C): invalid tree %s\n  (%v)\n",
		res.InvalidTree, res.InvalidErr)

	nullSrc := graph.New()
	_ = nullSrc.AddOuterEdge("X", "Y", eq("X", "Y"))
	_ = nullSrc.AddSemiEdge("Y", "Z", eq("Y", "Z"))
	for trial := 0; ; trial++ {
		if trial > 2000 {
			return fmt.Errorf("no counterexample for null-supplied semijoin source")
		}
		db := workload.RandomDB(rnd, nullSrc, 4)
		res, err := core.Verify(nullSrc, db)
		if err != nil {
			return err
		}
		if !res.AllEqual && res.InvalidTree == nil {
			fmt.Printf("null-supplied semijoin source (X -> Y ~> Z): %s and %s disagree (%d vs %d rows)\n",
				res.WitnessA, res.WitnessB, res.ResultA.Len(), res.ResultB.Len())
			break
		}
	}

	consumed := graph.New()
	_ = consumed.AddSemiEdge("A", "B", eq("A", "B"))
	_ = consumed.AddJoinEdge("B", "C", eq("B", "C"))
	res, err = core.Verify(consumed, workload.RandomDB(rnd, consumed, 4))
	if err != nil {
		return err
	}
	fmt.Printf("consumed node with a join edge (A ~> B - C): invalid tree %s\n", res.InvalidTree)
	fmt.Println("\npaper §6.3: \"semijoin edges in series appear to be an additional forbidden subgraph\" — confirmed, plus two more patterns")
	return nil
}

func runE18(cfg config) error {
	rnd := rand.New(rand.NewSource(cfg.seed + 8))
	names := []string{"A", "B", "C", "D", "E", "F"}
	agreeNice, agreeNot := 0, 0
	for trial := 0; trial < cfg.trials*50; trial++ {
		n := 2 + rnd.Intn(5)
		q := randomTree(rnd, names[:n])
		g, err := expr.GraphOf(q)
		if err != nil {
			return err
		}
		nice, _ := g.IsNice()
		tree, _ := expr.TreeCondition(q)
		if nice != tree {
			return fmt.Errorf("CONJECTURE VIOLATION on %s", q.StringWithPreds())
		}
		if nice {
			agreeNice++
		} else {
			agreeNot++
		}
	}
	fmt.Printf("checked %d random well-formed trees: graph niceness and the §6.3 tree conditions agree on all (nice: %d, not: %d)\n",
		agreeNice+agreeNot, agreeNice, agreeNot)
	fmt.Println("tree conditions: (1) null-supplied operands contain no regular join;")
	fmt.Println("(2) join predicates never touch null-supplied relations; (3) no double null-supply")
	return nil
}

func runE19(cfg config) error {
	// Example 2's shape X -> (Y - Z): not freely reorderable, so the DP
	// refuses to touch it — but identity 15 rewrites it to
	// (X -> Y) GOJ[sch(X)] Z, letting a 1-row X drive.
	n := cfg.n / 10
	if n < 1000 {
		n = 1000
	}
	rnd := rand.New(rand.NewSource(cfg.seed + 9))
	cat := newExample2Catalog(rnd, n)
	o := optimizerNew(cat)
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"),
			predicate.Eq(relation.A("Y", "a"), relation.A("Z", "a"))),
		predicate.Eq(relation.A("X", "a"), relation.A("Y", "a")))

	fmt.Printf("query: %s   (|X| = 1, N = %d, key indexes)\n", q, n)
	if ok, reason := core.FreelyReorderable(q); ok {
		return fmt.Errorf("should not be freely reorderable: %s", reason)
	}
	fmt.Println("free reorderability: NO (Example 2 graph) — Theorem 1 cannot help")

	fixed, err := o.PlanFixed(q)
	if err != nil {
		return err
	}
	_, cf, err := o.Execute(fixed)
	if err != nil {
		return err
	}
	p, tr, err := o.OptimizeWithGOJTrace(q)
	if err != nil {
		return err
	}
	out, cg, err := o.Execute(p)
	if err != nil {
		return err
	}
	want, err := q.Eval(cat)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-28s %-24s tuples=%d\n", "fixed order:", fixed.Tree(), cf.TuplesRetrieved())
	fmt.Printf("%-28s %-24s tuples=%d\n", "strategy="+tr.Strategy+":", p.Tree(), cg.TuplesRetrieved())
	fmt.Printf("results equal: %v (%d rows)\n", out.EqualBag(want), out.Len())

	_, _, text, err := o.ExplainAnalyze(p, tr)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-operator breakdown of the chosen plan:\n%s", text)
	fmt.Println("\npaper §6.2: \"Reassociation for general graphs is still possible using generalized outerjoin\"")
	return nil
}

func randomTree(rnd *rand.Rand, rels []string) *expr.Node {
	if len(rels) == 1 {
		return expr.NewLeaf(rels[0])
	}
	k := 1 + rnd.Intn(len(rels)-1)
	left := randomTree(rnd, rels[:k])
	right := randomTree(rnd, rels[k:])
	p := predicate.Eq(
		relation.A(rels[rnd.Intn(k)], "a"),
		relation.A(rels[k:][rnd.Intn(len(rels)-k)], "a"))
	switch rnd.Intn(3) {
	case 0:
		return expr.NewJoin(left, right, p)
	case 1:
		return expr.NewOuter(left, right, p)
	default:
		return expr.NewRightOuter(left, right, p)
	}
}
