package main

import (
	"strings"
	"testing"
)

func TestParseRawBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: freejoin/internal/obs
BenchmarkCounterAdd-8            	100000000	        10.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8      	 50000000	        25.0 ns/op
PASS
ok  	freejoin/internal/obs	2.5s
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkCounterAdd-8" || r.Iterations != 100000000 ||
		r.NsPerOp != 10.5 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("first result = %+v", r)
	}
	if results[1].Name != "BenchmarkHistogramObserve-8" || results[1].NsPerOp != 25.0 {
		t.Errorf("second result = %+v", results[1])
	}
}

func TestParseGoTestJSON(t *testing.T) {
	in := `{"Action":"output","Package":"freejoin/internal/obs","Output":"BenchmarkCounterAddParallel-8  \t20000000\t       5.25 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"freejoin/internal/obs","Output":"PASS\n"}
{"Action":"pass","Package":"freejoin/internal/obs"}
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkCounterAddParallel-8" || results[0].NsPerOp != 5.25 {
		t.Errorf("result = %+v", results[0])
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	results, err := parse(strings.NewReader("hello\nBenchmarkX 12 ns/op\n--- FAIL: TestY\n"))
	if err != nil {
		t.Fatal(err)
	}
	// "BenchmarkX 12 ns/op" lacks the iteration count column and must not
	// parse.
	if len(results) != 0 {
		t.Errorf("got %+v, want none", results)
	}
}

// Custom units reported with b.ReportMetric (the concurrent-server
// latency percentiles) land in Extra keyed by unit.
func TestParseReportMetricExtras(t *testing.T) {
	in := "BenchmarkServerConcurrent16-8  \t50\t 2100456 ns/op\t 800123 p50-ns/op\t 4100456 p95-ns/op\t 9100456 p99-ns/op\t 1024 B/op\t 12 allocs/op\n"
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results: %+v", len(results), results)
	}
	r := results[0]
	if r.NsPerOp != 2100456 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Errorf("standard columns = %+v", r)
	}
	if r.Extra["p50-ns/op"] != 800123 || r.Extra["p95-ns/op"] != 4100456 || r.Extra["p99-ns/op"] != 9100456 {
		t.Errorf("extras = %+v", r.Extra)
	}
	if len(r.Extra) != 3 {
		t.Errorf("unexpected extras: %+v", r.Extra)
	}
}
