package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Delta is one benchmark's movement between two baselines. Percentages
// are (new-old)/old*100 — positive ns/op or allocs/op is a slowdown.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	NsPct                float64
	OldAllocs, NewAllocs int64
	AllocsPct            float64
}

// loadBaseline reads a BENCH_*.json array and indexes it by name.
func loadBaseline(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	return byName, nil
}

// diffBaselines compares two baselines and renders a report. A
// benchmark regresses when ns/op OR allocs/op grew by more than
// threshold percent; the second result reports whether any did.
// Benchmarks present in only one file are listed informationally and
// never count as regressions (suites grow PR over PR).
func diffBaselines(oldPath, newPath string, threshold float64) (string, bool, error) {
	oldRes, err := loadBaseline(oldPath)
	if err != nil {
		return "", false, err
	}
	newRes, err := loadBaseline(newPath)
	if err != nil {
		return "", false, err
	}

	var deltas []Delta
	var added, removed []string
	for name, nr := range newRes {
		or, ok := oldRes[name]
		if !ok {
			added = append(added, name)
			continue
		}
		d := Delta{
			Name:  name,
			OldNs: or.NsPerOp, NewNs: nr.NsPerOp,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		if or.NsPerOp > 0 {
			d.NsPct = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		if or.AllocsPerOp > 0 {
			d.AllocsPct = float64(nr.AllocsPerOp-or.AllocsPerOp) / float64(or.AllocsPerOp) * 100
		}
		deltas = append(deltas, d)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].NsPct > deltas[j].NsPct })
	sort.Strings(added)
	sort.Strings(removed)

	var b strings.Builder
	regressed := false
	for _, d := range deltas {
		slowNs := d.NsPct > threshold
		slowAllocs := d.AllocsPct > threshold
		if !slowNs && !slowAllocs {
			continue
		}
		regressed = true
		fmt.Fprintf(&b, "REGRESSION %s:", d.Name)
		if slowNs {
			fmt.Fprintf(&b, " ns/op %+.1f%% (%.0f -> %.0f)", d.NsPct, d.OldNs, d.NewNs)
		}
		if slowAllocs {
			fmt.Fprintf(&b, " allocs/op %+.1f%% (%d -> %d)", d.AllocsPct, d.OldAllocs, d.NewAllocs)
		}
		b.WriteByte('\n')
	}
	if !regressed {
		fmt.Fprintf(&b, "no regressions over %.0f%% across %d shared benchmarks\n",
			threshold, len(deltas))
	}
	for _, name := range added {
		fmt.Fprintf(&b, "new benchmark (no baseline): %s\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(&b, "benchmark gone from new run: %s\n", name)
	}
	return b.String(), regressed, nil
}
