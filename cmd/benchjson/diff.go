package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Delta is one benchmark's movement between two baselines. Percentages
// are (new-old)/old*100 — positive ns/op or allocs/op is a slowdown. A
// metric that grows from a zero baseline has no finite percentage; its
// Pct is +Inf so it always counts as a regression instead of being
// silently dropped by a division guard.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	NsPct                float64
	OldAllocs, NewAllocs int64
	AllocsPct            float64
	Extras               []ExtraDelta
}

// ExtraDelta is the movement of one custom metric (b.ReportMetric
// units carried in Result.Extra — latency percentiles such as
// "p99-ns/op", or goodput percentages). HigherIsBetter flips the
// regression direction: a goodput drop regresses, a goodput rise does
// not.
type ExtraDelta struct {
	Unit           string
	Old, New       float64
	Pct            float64
	HigherIsBetter bool
}

// higherIsBetter classifies a custom metric's direction: percentage
// units ("goodput-pct", "hit-rate-pct") measure achieved throughput or
// quality, so more is better; everything else (latency percentiles
// "p95-ns/op", queue waits) follows the ns/op convention where more is
// worse.
func higherIsBetter(unit string) bool { return strings.HasSuffix(unit, "-pct") }

// pctDelta returns the movement from old to new in percent, with the
// zero-baseline guards: 0 → 0 is no movement, 0 → x is +Inf (or -Inf
// for a drop to negative), never a division by zero.
func pctDelta(old, new float64) float64 {
	if old != 0 {
		return (new - old) / old * 100
	}
	if new > 0 {
		return math.Inf(1)
	}
	if new < 0 {
		return math.Inf(-1)
	}
	return 0
}

// fmtPct renders a movement percentage, keeping the infinite
// zero-baseline case readable.
func fmtPct(pct float64) string {
	if math.IsInf(pct, 1) {
		return "+inf% (zero baseline)"
	}
	if math.IsInf(pct, -1) {
		return "-inf% (zero baseline)"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// loadBaseline reads a BENCH_*.json array and indexes it by name.
func loadBaseline(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	return byName, nil
}

// regressedExtra reports whether one custom metric moved the wrong way
// past the threshold, respecting its direction.
func regressedExtra(e ExtraDelta, threshold float64) bool {
	if e.HigherIsBetter {
		return e.Pct < -threshold
	}
	return e.Pct > threshold
}

// diffBaselines compares two baselines and renders a report. A
// benchmark regresses when ns/op, allocs/op, or any shared custom
// metric moved the wrong way by more than threshold percent; the second
// result reports whether any did. Benchmarks (and custom metrics)
// present in only one file are listed informationally and never count
// as regressions (suites grow PR over PR).
func diffBaselines(oldPath, newPath string, threshold float64) (string, bool, error) {
	oldRes, err := loadBaseline(oldPath)
	if err != nil {
		return "", false, err
	}
	newRes, err := loadBaseline(newPath)
	if err != nil {
		return "", false, err
	}

	var deltas []Delta
	var added, removed []string
	for name, nr := range newRes {
		or, ok := oldRes[name]
		if !ok {
			added = append(added, name)
			continue
		}
		d := Delta{
			Name:  name,
			OldNs: or.NsPerOp, NewNs: nr.NsPerOp,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		d.NsPct = pctDelta(or.NsPerOp, nr.NsPerOp)
		d.AllocsPct = pctDelta(float64(or.AllocsPerOp), float64(nr.AllocsPerOp))
		for unit, nv := range nr.Extra {
			ov, shared := or.Extra[unit]
			if !shared {
				continue
			}
			d.Extras = append(d.Extras, ExtraDelta{
				Unit: unit, Old: ov, New: nv,
				Pct:            pctDelta(ov, nv),
				HigherIsBetter: higherIsBetter(unit),
			})
		}
		sort.Slice(d.Extras, func(i, j int) bool { return d.Extras[i].Unit < d.Extras[j].Unit })
		deltas = append(deltas, d)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].NsPct > deltas[j].NsPct })
	sort.Strings(added)
	sort.Strings(removed)

	var b strings.Builder
	regressed := false
	for _, d := range deltas {
		slowNs := d.NsPct > threshold
		slowAllocs := d.AllocsPct > threshold
		slowExtra := false
		for _, e := range d.Extras {
			if regressedExtra(e, threshold) {
				slowExtra = true
				break
			}
		}
		if !slowNs && !slowAllocs && !slowExtra {
			continue
		}
		regressed = true
		fmt.Fprintf(&b, "REGRESSION %s:", d.Name)
		if slowNs {
			fmt.Fprintf(&b, " ns/op %s (%.0f -> %.0f)", fmtPct(d.NsPct), d.OldNs, d.NewNs)
		}
		if slowAllocs {
			fmt.Fprintf(&b, " allocs/op %s (%d -> %d)", fmtPct(d.AllocsPct), d.OldAllocs, d.NewAllocs)
		}
		for _, e := range d.Extras {
			if regressedExtra(e, threshold) {
				fmt.Fprintf(&b, " %s %s (%g -> %g)", e.Unit, fmtPct(e.Pct), e.Old, e.New)
			}
		}
		b.WriteByte('\n')
	}
	if !regressed {
		fmt.Fprintf(&b, "no regressions over %.0f%% across %d shared benchmarks\n",
			threshold, len(deltas))
	}
	for _, name := range added {
		fmt.Fprintf(&b, "new benchmark (no baseline): %s\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(&b, "benchmark gone from new run: %s\n", name)
	}
	return b.String(), regressed, nil
}
