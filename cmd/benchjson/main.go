// Command benchjson converts `go test -bench` output into a JSON
// benchmark baseline. It reads benchmark result lines from stdin —
// either the raw text form or `go test -json` events whose Output
// fields carry those lines — and writes one JSON array with an entry
// per benchmark: name, iterations, ns/op, B/op, allocs/op.
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-05.json
//
// The Makefile's bench-json target drives this to snapshot a dated,
// machine-readable baseline next to the repository (tracking ns/op
// drift of the metrics hot path, the DP, and the executor across PRs).
//
// Two further modes ride on the same baselines:
//
//	benchjson -diff old.json new.json
//
// compares two baselines and flags regressions over the threshold
// (default 20%) in ns/op and allocs/op, exiting 1 when any are found —
// the advisory CI step against the committed baseline. And
//
//	benchjson -cpu cpu.prof -mem mem.prof -top 20 -o PROFILE_<date>.json
//
// parses the profiles `go test -cpuprofile/-memprofile` wrote during the
// bench run (via internal/pprofparse, no external tooling) and emits a
// top-N CPU and allocation attribution report — the hit list for the
// vectorized-execution work in ROADMAP open item 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. Extra carries custom units
// reported with b.ReportMetric (e.g. latency percentiles "p95-ns/op" of
// the concurrent server benchmark), keyed by unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// testEvent is the subset of `go test -json` events we care about.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		diff      = flag.Bool("diff", false, "compare two baselines: benchjson -diff old.json new.json")
		threshold = flag.Float64("threshold", 20, "regression threshold in percent for -diff")
		cpuProf   = flag.String("cpu", "", "CPU profile (pprof) to attribute")
		memProf   = flag.String("mem", "", "allocation profile (pprof) to attribute")
		topN      = flag.Int("top", 20, "entries per attribution top-N list")
	)
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		report, regressed, err := diffBaselines(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if regressed {
			os.Exit(1)
		}
		return
	case *cpuProf != "" || *memProf != "":
		rep, err := attributeProfiles(*cpuProf, *memProf, *topN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := writeJSON(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "benchjson: wrote attribution report to %s\n", *out)
		}
		return
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := writeJSON(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}

// writeJSON encodes v, indented, to path ("" = stdout).
func writeJSON(path string, v any) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// parse extracts benchmark results from r, accepting raw bench output
// and `go test -json` streams interchangeably (even mixed).
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		res, ok := parseLine(strings.TrimSpace(line))
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one benchmark result line: the name, the iteration
// count, then (value, unit) measurement pairs — ns/op plus the optional
// -benchmem columns and any custom units from b.ReportMetric. A line
// without an ns/op measurement is not a result.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, sawNs
}
