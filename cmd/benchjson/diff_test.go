package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
)

// writeBaseline writes a BENCH_*.json-shaped file for diff tests.
func writeBaseline(t *testing.T, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", []Result{
		{Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkSlowed", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkAllocsUp", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkRemoved", NsPerOp: 100},
	})
	newPath := writeBaseline(t, "new.json", []Result{
		{Name: "BenchmarkFast", NsPerOp: 90, AllocsPerOp: 10},      // improved
		{Name: "BenchmarkSlowed", NsPerOp: 150, AllocsPerOp: 10},   // +50% ns/op
		{Name: "BenchmarkAllocsUp", NsPerOp: 100, AllocsPerOp: 20}, // +100% allocs
		{Name: "BenchmarkAdded", NsPerOp: 100},                     // no baseline
	})

	report, regressed, err := diffBaselines(oldPath, newPath, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("regressions not flagged")
	}
	for _, want := range []string{
		"REGRESSION BenchmarkSlowed: ns/op +50.0%",
		"REGRESSION BenchmarkAllocsUp:", "allocs/op +100.0%",
		"new benchmark (no baseline): BenchmarkAdded",
		"benchmark gone from new run: BenchmarkRemoved",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "REGRESSION BenchmarkFast") {
		t.Errorf("improvement flagged as regression:\n%s", report)
	}
	// Added/removed benchmarks never regress on their own.
	if strings.Contains(report, "REGRESSION BenchmarkAdded") ||
		strings.Contains(report, "REGRESSION BenchmarkRemoved") {
		t.Errorf("added/removed benchmark counted as regression:\n%s", report)
	}
}

func TestDiffThresholdAndCleanRun(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10},
	})
	newPath := writeBaseline(t, "new.json", []Result{
		{Name: "BenchmarkA", NsPerOp: 115, AllocsPerOp: 11}, // +15%, +10%
	})

	report, regressed, err := diffBaselines(oldPath, newPath, 20)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("+15%% flagged at a 20%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "no regressions over 20% across 1 shared benchmarks") {
		t.Errorf("clean summary missing:\n%s", report)
	}

	// The same drift regresses at a 10% threshold.
	if _, regressed, err = diffBaselines(oldPath, newPath, 10); err != nil || !regressed {
		t.Fatalf("threshold 10: regressed=%v err=%v", regressed, err)
	}
}

func TestDiffErrors(t *testing.T) {
	good := writeBaseline(t, "good.json", []Result{{Name: "BenchmarkA", NsPerOp: 1}})
	if _, _, err := diffBaselines(good, filepath.Join(t.TempDir(), "missing.json"), 20); err == nil {
		t.Error("missing baseline not an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, _, err := diffBaselines(bad, good, 20); err == nil {
		t.Error("corrupt baseline not an error")
	}
}

// The attribution report resolves a real profile: a heap profile of this
// test binary always carries alloc_space samples, so the Alloc section
// has a total, a top list, and the requested cap.
func TestProfileReportFromHeapProfile(t *testing.T) {
	// Allocate something attributable so the profile is never empty.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink

	path := filepath.Join(t.TempDir(), "mem.prof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := attributeProfiles("", path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != nil {
		t.Error("CPU section present without a CPU profile")
	}
	sec := rep.Alloc
	if sec == nil {
		t.Fatal("no Alloc section")
	}
	if sec.SampleType != "alloc_space" && sec.SampleType != "alloc_objects" {
		t.Errorf("sample type = %q", sec.SampleType)
	}
	if sec.Total <= 0 {
		t.Errorf("total = %d, want > 0", sec.Total)
	}
	if len(sec.Top) == 0 || len(sec.Top) > 5 {
		t.Errorf("top list has %d entries, want 1..5", len(sec.Top))
	}
	for _, e := range sec.Top {
		if e.Cum < e.Flat {
			t.Errorf("%s: cum %d < flat %d", e.Name, e.Cum, e.Flat)
		}
	}

	// A heap profile carries no cpu/samples type: asking for a CPU
	// section from it is a typed error, not a zero report.
	if _, err := attributeProfiles(path, "", 5); err == nil {
		t.Error("heap profile accepted as CPU profile")
	}
}

// Custom metrics from Result.Extra are compared with direction
// awareness: latency percentiles regress when they rise, goodput
// percentages regress when they drop, and rises in goodput are never
// flagged. Metrics present in only one baseline are ignored.
func TestDiffExtraMetrics(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", []Result{
		{Name: "BenchmarkServer", NsPerOp: 100,
			Extra: map[string]float64{"p99-ns/op": 1000, "goodput-pct": 99, "old-only": 5}},
		{Name: "BenchmarkGoodputUp", NsPerOp: 100,
			Extra: map[string]float64{"goodput-pct": 50}},
	})
	newPath := writeBaseline(t, "new.json", []Result{
		{Name: "BenchmarkServer", NsPerOp: 100,
			Extra: map[string]float64{"p99-ns/op": 2000, "goodput-pct": 60, "new-only": 7}},
		{Name: "BenchmarkGoodputUp", NsPerOp: 100,
			Extra: map[string]float64{"goodput-pct": 100}},
	})
	report, regressed, err := diffBaselines(oldPath, newPath, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("extra-metric regressions not flagged:\n%s", report)
	}
	for _, want := range []string{
		"REGRESSION BenchmarkServer:",
		"p99-ns/op +100.0% (1000 -> 2000)",
		"goodput-pct -39.4% (99 -> 60)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Goodput doubling is an improvement, not a regression.
	if strings.Contains(report, "BenchmarkGoodputUp") {
		t.Errorf("goodput improvement flagged:\n%s", report)
	}
	// One-sided metrics never compare.
	if strings.Contains(report, "old-only") || strings.Contains(report, "new-only") {
		t.Errorf("one-sided extra metric compared:\n%s", report)
	}
}

// A metric growing from a zero baseline must count as a regression
// (old behavior silently skipped it behind the division guard), and
// 0 → 0 must not divide by zero or flag anything.
func TestDiffZeroBaselineGuards(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", []Result{
		{Name: "BenchmarkFromZero", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkStaysZero", NsPerOp: 100, AllocsPerOp: 0,
			Extra: map[string]float64{"retries/op": 0}},
	})
	newPath := writeBaseline(t, "new.json", []Result{
		{Name: "BenchmarkFromZero", NsPerOp: 100, AllocsPerOp: 12},
		{Name: "BenchmarkStaysZero", NsPerOp: 100, AllocsPerOp: 0,
			Extra: map[string]float64{"retries/op": 0}},
	})
	report, regressed, err := diffBaselines(oldPath, newPath, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("allocs growing from zero not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION BenchmarkFromZero: allocs/op +inf% (zero baseline) (0 -> 12)") {
		t.Errorf("zero-baseline growth not reported:\n%s", report)
	}
	if strings.Contains(report, "BenchmarkStaysZero") {
		t.Errorf("0 -> 0 flagged:\n%s", report)
	}
}
