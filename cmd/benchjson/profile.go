package main

import (
	"fmt"

	"freejoin/internal/pprofparse"
)

// ProfileReport is the attribution report `benchjson -cpu/-mem` writes
// next to BENCH_*.json: where the benchmark suite's CPU time and
// allocations go, by function, plus per-query-label splits when the
// profile carries pprof labels (profiles captured from the live server
// do; `go test -cpuprofile` bench profiles usually do not).
type ProfileReport struct {
	CPU   *ProfileSection `json:"cpu,omitempty"`
	Alloc *ProfileSection `json:"alloc,omitempty"`
}

// ProfileSection is one profile's top-N attribution.
type ProfileSection struct {
	File       string             `json:"file"`
	SampleType string             `json:"sample_type"`
	Unit       string             `json:"unit"`
	Total      int64              `json:"total"`
	Top        []pprofparse.Entry `json:"top"`
	// ByQueryID / ByFingerprint split the total across pprof label
	// values; the "" key is the unattributed remainder (runtime, GC,
	// goroutines outside any labeled query).
	ByQueryID     map[string]int64 `json:"by_query_id,omitempty"`
	ByFingerprint map[string]int64 `json:"by_fingerprint,omitempty"`
}

// attributeProfiles parses the given profiles (either path may be
// empty) and builds the report.
func attributeProfiles(cpuPath, memPath string, topN int) (*ProfileReport, error) {
	rep := &ProfileReport{}
	if cpuPath != "" {
		sec, err := sectionFor(cpuPath, []string{"cpu", "samples"}, topN)
		if err != nil {
			return nil, err
		}
		rep.CPU = sec
	}
	if memPath != "" {
		sec, err := sectionFor(memPath, []string{"alloc_space", "alloc_objects"}, topN)
		if err != nil {
			return nil, err
		}
		rep.Alloc = sec
	}
	return rep, nil
}

// sectionFor parses one profile and aggregates the first sample type in
// wanted that the profile carries.
func sectionFor(path string, wanted []string, topN int) (*ProfileSection, error) {
	p, err := pprofparse.ParseFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	vi := -1
	var st pprofparse.ValueType
	for _, w := range wanted {
		if i := p.Index(w); i >= 0 {
			vi, st = i, p.SampleTypes[i]
			break
		}
	}
	if vi < 0 {
		return nil, fmt.Errorf("%s: none of the sample types %v present (have %v)",
			path, wanted, p.SampleTypes)
	}
	sec := &ProfileSection{
		File:       path,
		SampleType: st.Type,
		Unit:       st.Unit,
		Total:      p.Total(vi),
		Top:        p.TopFunctions(vi, topN),
	}
	if len(p.LabelValues("query_id")) > 0 {
		sec.ByQueryID = p.ByLabel("query_id", vi)
	}
	if len(p.LabelValues("fingerprint")) > 0 {
		sec.ByFingerprint = p.ByLabel("fingerprint", vi)
	}
	return sec, nil
}
