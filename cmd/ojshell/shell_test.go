package main

import (
	"strings"
	"testing"

	"freejoin/internal/parse"
)

func runScript(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	sh := NewShell(&out)
	if err := sh.Run(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellEndToEnd(t *testing.T) {
	out := runScript(t, `
-- a comment
table R(a, b) = (1, 'x'), (2, null)
table S(a) = (2), (3)
tables
index S a
query R ->[R.a = S.a] S
graph R ->[R.a = S.a] S
analyze R ->[R.a = S.a] S
trees (R -[R.a = S.a] S)
plan R ->[R.a = S.a] S
quit
`)
	for _, want := range []string{
		"table R: 2 rows",
		"table S: 2 rows",
		"hash index on S.a",
		"freely reorderable",
		"(2 rows)",
		"R -> S",
		"tuples retrieved:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellErrorsAreReported(t *testing.T) {
	out := runScript(t, `
bogus command
table R(a = (1)
table R(a) = 1, 2
index R a
index R
query R -[bad
query NOPE -[R.a = S.a] S
analyze R -[R.a] S
\q
`)
	if n := strings.Count(out, "error:"); n < 6 {
		t.Errorf("expected >=6 errors, got %d:\n%s", n, out)
	}
}

func TestShellCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.csv"
	out := runScript(t, `
table R(a, b) = (1, 'x'), (2, null)
save R `+path+`
load S `+path+`
query S
save NOPE `+path+`
load X `+dir+`/missing.csv
load X
save X
`)
	if !strings.Contains(out, "wrote "+path) || !strings.Contains(out, "table S: 2 rows") {
		t.Errorf("csv round trip broken:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("loaded table not queryable:\n%s", out)
	}
	if strings.Count(out, "error:") < 4 {
		t.Errorf("csv error paths not reported:\n%s", out)
	}
}

func TestShellSigmaPlan(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2), (3)
table S(a) = (1), (2)
index R a
plan sigma[R.a = 2](R ->[R.a = S.a] S)
query sigma[R.a = 2](R ->[R.a = S.a] S)
`)
	if !strings.Contains(out, "reordered: true") {
		t.Errorf("sigma plan should reorder via the pipeline:\n%s", out)
	}
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("sigma query result wrong:\n%s", out)
	}
}

func TestShellDumpRestore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cat.fjdb"
	out := runScript(t, `
table R(a) = (1), (2)
index R a
dump `+path+`
table R(a) = (9)
restore `+path+`
query R
dump
restore
restore `+dir+`/missing.fjdb
`)
	if !strings.Contains(out, "snapshot written") || !strings.Contains(out, "restored 1 tables") {
		t.Errorf("dump/restore broken:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("restored table content wrong:\n%s", out)
	}
	if strings.Count(out, "error:") < 3 {
		t.Errorf("error paths missing:\n%s", out)
	}
}

func TestShellValueParsing(t *testing.T) {
	out := runScript(t, `
table T(a, b, c, d, e) = (1, 2.5, 'txt', null, true), (2, -1.5, 'y', -, false)
query T
`)
	if !strings.Contains(out, "(2 rows)") || !strings.Contains(out, "txt") {
		t.Errorf("value parsing broken:\n%s", out)
	}
}

func TestShellTreeListLimit(t *testing.T) {
	// A 7-chain has 132 trees (listable); a 10-chain exceeds the cap.
	var b strings.Builder
	for i := 0; i < 10; i++ {
		b.WriteString("table ")
		b.WriteByte(byte('A' + i))
		b.WriteString("(a) = (1)\n")
	}
	script := b.String()
	big := "A"
	for i := 1; i < 10; i++ {
		big = "(" + big + " -[" + string(byte('A'+i-1)) + ".a = " + string(byte('A'+i)) + ".a] " + string(byte('A'+i)) + ")"
	}
	script += "trees " + big + "\n"
	out := runScript(t, script)
	if !strings.Contains(out, "refusing to list") {
		t.Errorf("tree cap not applied:\n%s", out)
	}
}

func TestParseValueForms(t *testing.T) {
	for _, bad := range []string{"abc", "1x", "''x"} {
		if _, err := parse.Value(bad); err == nil && bad != "''x" {
			t.Errorf("parse.Value(%q) should fail", bad)
		}
	}
	v, err := parse.Value("3")
	if err != nil || v.AsInt() != 3 {
		t.Error("int parse broken")
	}
	v, err = parse.Value("2.5")
	if err != nil || v.AsFloat() != 2.5 {
		t.Error("float parse broken")
	}
}

// Regression: a query naming a table the catalog does not have must
// report a clean error from every command path — historically the graph
// layer panicked on the unknown node.
func TestShellUnknownTableIsError(t *testing.T) {
	for _, cmd := range []string{"plan", "explain", "explain analyze", "query"} {
		out := runScript(t, `
table R(a) = (1), (2)
`+cmd+` R -[R.a = Zed.a] Zed
quit
`)
		if !strings.Contains(out, "error:") {
			t.Errorf("%s with unknown table must report an error, got:\n%s", cmd, out)
		}
		if strings.Contains(out, "panic") {
			t.Errorf("%s with unknown table panicked:\n%s", cmd, out)
		}
	}
}

func TestShellSetLimits(t *testing.T) {
	out := runScript(t, `
set timeout 250ms
set memory_limit 64KB
set
set timeout off
set memory_limit off
set
set timeout bogus
set memory_limit bogus
quit
`)
	for _, want := range []string{
		"timeout 250ms",
		"memory_limit 65536 bytes",
		"timeout off",
		"memory_limit off",
		"error:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("set output missing %q:\n%s", want, out)
		}
	}
}

// "set strategy yannakakis" must force the acyclic fast path: the plan
// shows semireduce steps, the query still answers correctly, and bogus
// values get the usage error.
func TestShellSetStrategy(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
table T(a) = (2), (4)
set strategy yannakakis
set
plan (R -[R.a = S.a] S) -[S.a = T.a] T
query (R -[R.a = S.a] S) -[S.a = T.a] T
set strategy dp
set strategy bogus
quit
`)
	for _, want := range []string{
		"strategy yannakakis",
		"strategy: yannakakis",
		"semireduce",
		"(1 rows)",
		"strategy dp",
		"error: usage: set strategy dp|yannakakis|auto",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("strategy output missing %q:\n%s", want, out)
		}
	}
}

// A plan over budget must surface the typed resource error instead of
// silently truncating, and explain analyze must render the abort with
// the tripping operator.
func TestShellMemoryLimitTrips(t *testing.T) {
	script := `
table R(a) = (1), (2), (3), (4), (5)
table S(a) = (1), (2), (3), (4), (5)
set memory_limit 100
plan R -[R.a = S.a] S
explain analyze R -[R.a = S.a] S
quit
`
	out := runScript(t, script)
	if !strings.Contains(out, "memory budget exceeded") {
		t.Errorf("over-budget plan must report the trip:\n%s", out)
	}
	if !strings.Contains(out, "-- aborted:") {
		t.Errorf("explain analyze must render the abort trailer:\n%s", out)
	}
	if !strings.Contains(out, "<-- error:") {
		t.Errorf("explain analyze must mark the tripping operator:\n%s", out)
	}
}

// With room in the budget, governed execution matches ungoverned.
func TestShellLimitsWithinBudget(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
set timeout 10s
set memory_limit 1MB
plan R -[R.a = S.a] S
quit
`)
	if !strings.Contains(out, "(1 rows)") && !strings.Contains(out, "(1 row)") {
		t.Errorf("governed plan within budget must produce the result:\n%s", out)
	}
}

// The prepared-query pipeline: prepare warms the plan cache, execute
// hits it, and the hit shares the fingerprint prepare reported.
func TestShellPrepareExecute(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2), (3)
table S(a) = (2), (3)
prepare q1 R ->[R.a = S.a] S
execute q1
execute q1
prepare q1 R -[R.a = S.a] S
execute q1
execute
execute nope
prepare q2
quit
`)
	if !strings.Contains(out, "prepared q1 (plan cache miss, fp ") {
		t.Errorf("prepare must report the cold plan:\n%s", out)
	}
	if n := strings.Count(out, "plan cache: hit"); n < 3 {
		t.Errorf("expected >=3 plan-cache hits across executes, got %d:\n%s", n, out)
	}
	if n := strings.Count(out, "(3 rows)"); n < 2 {
		t.Errorf("outerjoin result must render on every execute:\n%s", out)
	}
	if n := strings.Count(out, "error:"); n < 3 {
		t.Errorf("usage errors missing (got %d):\n%s", n, out)
	}
}

// set plan_cache toggles and resizes the session cache; plan/explain
// share it, so a repeated plan is a hit until the cache is turned off.
func TestShellSetPlanCache(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
explain R -[R.a = S.a] S
explain R -[R.a = S.a] S
set
set plan_cache off
explain R -[R.a = S.a] S
set plan_cache 4
set
set plan_cache on
set plan_cache bogus
quit
`)
	if !strings.Contains(out, "plancache: miss") || !strings.Contains(out, "plancache: hit") {
		t.Errorf("explain must trace the plan-cache outcome:\n%s", out)
	}
	if !strings.Contains(out, "plan_cache: on (cap 128, 1 cached)") {
		t.Errorf("bare set must show the cache state:\n%s", out)
	}
	if !strings.Contains(out, "plan_cache off") || !strings.Contains(out, "plan_cache on (cap 4)") {
		t.Errorf("plan_cache toggle output missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("bogus plan_cache value must error:\n%s", out)
	}
}

// Index builds and restores change the statistics epoch, so a prepared
// plan is re-optimized instead of reusing a stale cached plan.
func TestShellPrepareInvalidation(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2), (3)
table S(a) = (2), (3)
prepare q1 R -[R.a = S.a] S
execute q1
index S a
execute q1
quit
`)
	if !strings.Contains(out, "plan cache: hit") {
		t.Errorf("pre-index execute must hit:\n%s", out)
	}
	// After the index build the epoch moved: the second execute re-plans.
	idx := strings.Index(out, "hash index on S.a")
	if idx < 0 {
		t.Fatalf("index build missing:\n%s", out)
	}
	if !strings.Contains(out[idx:], "plan cache: miss") {
		t.Errorf("post-index execute must miss (stale epoch):\n%s", out)
	}
}

// "set batch_size" toggles the vectorized evaluators: off forces the
// row-at-a-time plan, an explicit size and default both batch, queries
// answer identically either way, and bogus values get the usage error.
func TestShellSetBatchSize(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
set
set batch_size off
query R ->[R.a = S.a] S
set batch_size 256
set
query R ->[R.a = S.a] S
set batch_size default
set batch_size 0
set batch_size bogus
quit
`)
	for _, want := range []string{
		"batch_size: 1024 (default)",
		"batch_size off",
		"batch_size 256",
		"batch_size: 256",
		"batch_size 1024 (default)",
		"error: usage: set batch_size N|off|default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("batch_size output missing %q:\n%s", want, out)
		}
	}
	// Both modes ran the same outerjoin: two result blocks, both 2 rows.
	if got := strings.Count(out, "(2 rows)"); got != 2 {
		t.Errorf("expected both modes to answer with 2 rows twice, got %d:\n%s", got, out)
	}
}
