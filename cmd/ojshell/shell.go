package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Shell is the interactive session state: a catalog plus the commands
// that operate on it. It is separated from main for testability.
type Shell struct {
	cat *storage.Catalog
	out io.Writer

	// Resource limits applied to plan / explain analyze executions; zero
	// means unlimited.
	timeout  time.Duration
	memLimit int64 // bytes
}

// NewShell returns a shell writing to out.
func NewShell(out io.Writer) *Shell {
	return &Shell{cat: storage.NewCatalog(), out: out}
}

// Run processes commands line by line until EOF or \q.
func (s *Shell) Run(in io.Reader, prompt bool) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if prompt {
			fmt.Fprint(s.out, "oj> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if line == `\q` || line == "quit" || line == "exit" {
			return nil
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
}

// Exec runs one command.
func (s *Shell) Exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(cmd) {
	case "help", `\h`:
		s.help()
		return nil
	case "table":
		return s.cmdTable(rest)
	case "index":
		return s.cmdIndex(rest)
	case "load":
		return s.cmdLoad(rest)
	case "save":
		return s.cmdSave(rest)
	case "dump":
		if rest == "" {
			return fmt.Errorf("usage: dump file.fjdb")
		}
		if err := storage.SaveCatalogFile(rest, s.cat); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "snapshot written to %s\n", rest)
		return nil
	case "restore":
		if rest == "" {
			return fmt.Errorf("usage: restore file.fjdb")
		}
		cat, err := storage.LoadCatalogFile(rest)
		if err != nil {
			return err
		}
		s.cat = cat
		fmt.Fprintf(s.out, "restored %d tables from %s\n", len(cat.Tables()), rest)
		return nil
	case "tables":
		for _, n := range s.cat.Tables() {
			t, _ := s.cat.Table(n)
			fmt.Fprintf(s.out, "%s%s  (%d rows)\n", n, t.Scheme(), t.Relation().Len())
		}
		return nil
	case "query", "eval":
		return s.cmdQuery(rest)
	case "graph":
		return s.cmdGraph(rest)
	case "analyze":
		return s.cmdAnalyze(rest)
	case "plan":
		return s.cmdPlan(rest)
	case "explain":
		return s.cmdExplain(rest)
	case "set":
		return s.cmdSet(rest)
	case "trees":
		return s.cmdTrees(rest)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  table NAME(col, ...) = (v, ...), (v, ...)   define a table; null for nulls
  load NAME file.csv                          import a table from CSV
  save NAME file.csv                          export a table to CSV
  dump file.fjdb / restore file.fjdb          snapshot / restore the whole catalog
  index NAME col                              build a hash index
  tables                                      list tables
  query   EXPR                                evaluate an expression
  graph   EXPR                                show the query graph
  analyze EXPR                                free-reorderability analysis
  trees   EXPR                                list the implementing trees
  plan    EXPR                                optimize, explain and execute
  explain EXPR                                show the chosen plan and optimizer trace
  explain analyze EXPR                        run the plan with per-operator statistics
  set timeout DUR|off                         execution deadline (e.g. 500ms, 2s)
  set memory_limit N[KB|MB]|off               executor memory budget
  set                                         show current limits
  help / quit

expressions:  (R -[R.a = S.a] S) ->[S.b = T.b] T
operators:    -[p] join,  ->[p] left outerjoin,  <-[p] right outerjoin
restriction:  sigma[R.a = 1](R ->[R.a = S.a] S)
`)
}

// cmdTable parses "NAME(col, col) = (1, 'x'), (2, null)".
func (s *Shell) cmdTable(rest string) error {
	head, data, found := strings.Cut(rest, "=")
	if !found {
		return fmt.Errorf("usage: table NAME(col, ...) = (v, ...), ...")
	}
	head = strings.TrimSpace(head)
	open := strings.IndexByte(head, '(')
	if open < 0 || !strings.HasSuffix(head, ")") {
		return fmt.Errorf("table header must be NAME(col, ...)")
	}
	name := strings.TrimSpace(head[:open])
	var cols []string
	for _, c := range strings.Split(head[open+1:len(head)-1], ",") {
		cols = append(cols, strings.TrimSpace(c))
	}
	rel := relation.New(relation.SchemeOf(name, cols...))
	rows, err := parseRows(data, len(cols))
	if err != nil {
		return err
	}
	for _, r := range rows {
		rel.AppendRaw(r)
	}
	s.cat.AddRelation(name, rel)
	fmt.Fprintf(s.out, "table %s: %d rows\n", name, rel.Len())
	return nil
}

// parseRows parses "(v, ...), (v, ...)" with int, float, 'string', null.
func parseRows(data string, arity int) ([][]relation.Value, error) {
	var out [][]relation.Value
	data = strings.TrimSpace(data)
	for data != "" {
		if !strings.HasPrefix(data, "(") {
			return nil, fmt.Errorf("expected '(' at %q", data)
		}
		end := strings.IndexByte(data, ')')
		if end < 0 {
			return nil, fmt.Errorf("missing ')' in %q", data)
		}
		fields := strings.Split(data[1:end], ",")
		if len(fields) != arity {
			return nil, fmt.Errorf("row has %d values, want %d", len(fields), arity)
		}
		row := make([]relation.Value, len(fields))
		for i, f := range fields {
			v, err := parseValue(strings.TrimSpace(f))
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		data = strings.TrimSpace(data[end+1:])
		data = strings.TrimPrefix(data, ",")
		data = strings.TrimSpace(data)
	}
	return out, nil
}

func parseValue(f string) (relation.Value, error) {
	switch {
	case strings.EqualFold(f, "null"), f == "-":
		return relation.Null(), nil
	case strings.HasPrefix(f, "'") && strings.HasSuffix(f, "'") && len(f) >= 2:
		return relation.Str(f[1 : len(f)-1]), nil
	case strings.EqualFold(f, "true"):
		return relation.Bool(true), nil
	case strings.EqualFold(f, "false"):
		return relation.Bool(false), nil
	default:
		if i, err := strconv.ParseInt(f, 10, 64); err == nil {
			return relation.Int(i), nil
		}
		if fl, err := strconv.ParseFloat(f, 64); err == nil {
			return relation.Float(fl), nil
		}
		return relation.Value{}, fmt.Errorf("cannot parse value %q", f)
	}
}

func (s *Shell) cmdLoad(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: load NAME file.csv")
	}
	t, err := s.cat.LoadCSVFile(parts[0], parts[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "table %s: %d rows from %s\n", parts[0], t.Relation().Len(), parts[1])
	return nil
}

func (s *Shell) cmdSave(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: save NAME file.csv")
	}
	if err := s.cat.SaveCSVFile(parts[0], parts[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "wrote %s\n", parts[1])
	return nil
}

func (s *Shell) cmdIndex(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: index TABLE col")
	}
	t, err := s.cat.Table(parts[0])
	if err != nil {
		return err
	}
	if _, err := t.BuildHashIndex(parts[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "hash index on %s.%s\n", parts[0], parts[1])
	return nil
}

func (s *Shell) cmdQuery(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	out, err := q.Eval(s.cat)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

func (s *Shell) cmdGraph(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	g, err := expr.GraphOf(q)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, g)
	return nil
}

func (s *Shell) cmdAnalyze(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	a, err := core.Analyze(q)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, a)
	return nil
}

func (s *Shell) cmdTrees(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	g, err := expr.GraphOf(q)
	if err != nil {
		return err
	}
	n, err := expr.CountITs(g, true)
	if err != nil {
		return err
	}
	if n > 200 {
		return fmt.Errorf("%d trees; refusing to list more than 200", n)
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		return err
	}
	for i, it := range its {
		marker := " "
		if it.Equal(q) {
			marker = "*"
		}
		fmt.Fprintf(s.out, "%s %3d: %s\n", marker, i+1, it)
	}
	return nil
}

// cmdSet adjusts the session resource limits: "set timeout 500ms",
// "set memory_limit 64KB", "set ... off", or bare "set" to show them.
func (s *Shell) cmdSet(rest string) error {
	if rest == "" {
		fmt.Fprintf(s.out, "timeout: %s\nmemory_limit: %s\n",
			orOff(s.timeout.String(), s.timeout == 0), orOff(fmt.Sprintf("%d bytes", s.memLimit), s.memLimit == 0))
		return nil
	}
	name, val, _ := strings.Cut(rest, " ")
	val = strings.TrimSpace(val)
	switch strings.ToLower(name) {
	case "timeout":
		if strings.EqualFold(val, "off") {
			s.timeout = 0
			fmt.Fprintln(s.out, "timeout off")
			return nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("usage: set timeout DUR|off (e.g. 500ms)")
		}
		s.timeout = d
		fmt.Fprintf(s.out, "timeout %s\n", d)
		return nil
	case "memory_limit":
		if strings.EqualFold(val, "off") {
			s.memLimit = 0
			fmt.Fprintln(s.out, "memory_limit off")
			return nil
		}
		n, err := parseBytes(val)
		if err != nil {
			return err
		}
		s.memLimit = n
		fmt.Fprintf(s.out, "memory_limit %d bytes\n", n)
		return nil
	default:
		return fmt.Errorf("usage: set timeout DUR|off | set memory_limit N[KB|MB]|off")
	}
}

func orOff(s string, off bool) string {
	if off {
		return "off"
	}
	return s
}

// parseBytes parses "4096", "64KB", "2MB".
func parseBytes(v string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(v)
	switch {
	case strings.HasSuffix(upper, "MB"):
		mult, v = 1<<20, v[:len(v)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, v = 1<<10, v[:len(v)-2]
	case strings.HasSuffix(upper, "B"):
		v = v[:len(v)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("cannot parse byte size %q (use N, NKB or NMB)", v)
	}
	return n * mult, nil
}

// execContext builds the execution context for the session's limits; the
// returned cancel must be called when the execution finishes. A session
// with no limits gets a nil context (the ungoverned fast path).
func (s *Shell) execContext() (*exec.ExecContext, context.CancelFunc) {
	if s.timeout == 0 && s.memLimit == 0 {
		return nil, func() {}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	var gov *exec.Governor
	if s.memLimit > 0 {
		gov = exec.NewGovernor(0, s.memLimit)
	}
	return exec.NewExecContext(ctx, gov), cancel
}

// cmdExplain handles "explain EXPR" (plan plus optimizer trace, no
// execution) and "explain analyze EXPR" (instrumented execution with
// per-operator actual rows, tuples, peak memory, time and q-error).
func (s *Shell) cmdExplain(rest string) error {
	analyze := false
	if after, ok := strings.CutPrefix(rest, "analyze "); ok {
		analyze = true
		rest = strings.TrimSpace(after)
	} else if rest == "analyze" {
		rest = ""
	}
	if rest == "" {
		return fmt.Errorf("usage: explain [analyze] EXPR")
	}
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	o := optimizer.New(s.cat)
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return err
	}
	if !analyze {
		fmt.Fprint(s.out, optimizer.Explain(p, tr))
		return nil
	}
	ec, cancel := s.execContext()
	defer cancel()
	_, _, text, err := o.ExplainAnalyzeCtx(ec, p, tr)
	// On an aborted run the text still renders the partial tree and the
	// tripping operator; print it before surfacing the error.
	fmt.Fprint(s.out, text)
	return err
}

func (s *Shell) cmdPlan(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	o := optimizer.New(s.cat)
	p, reordered, err := o.PlanQuery(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "reordered: %v\nplan: %s\n%s", reordered, p.Tree(), p.Explain())
	ec, cancel := s.execContext()
	defer cancel()
	out, c, err := o.ExecuteCtx(ec, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "tuples retrieved: %d\n", c.TuplesRetrieved)
	fmt.Fprint(s.out, out)
	return nil
}
