package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/obs"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/plancache"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Shell is the interactive session state: a catalog plus the commands
// that operate on it. It is separated from main for testability.
type Shell struct {
	cat *storage.Catalog
	out io.Writer

	// Resource limits applied to plan / explain analyze executions; zero
	// means unlimited.
	timeout  time.Duration
	memLimit int64 // bytes

	// spill enables spill-to-disk execution: blocking operators that
	// trip the memory budget switch to external algorithms (external
	// sort, grace hash join) instead of degrading or aborting. spillDir
	// overrides where run files go (default: the OS temp dir).
	spill    bool
	spillDir string

	// batchSize selects the vectorized execution mode: 0 runs batched
	// with exec.DefaultBatchSize, optimizer.BatchOff forces the
	// row-at-a-time evaluators, and a positive value sets the rows per
	// batch. It feeds optimizer.Optimizer.BatchSize and so is part of
	// the plan-cache fingerprint.
	batchSize int

	// strategy selects how freely-reorderable queries are planned:
	// "" / "dp" (the classic DP), "yannakakis" (the acyclic semijoin-
	// reducer fast path, DP fallback on cyclic graphs), or "auto"
	// (cost-compared). See optimizer.Optimizer.Strategy.
	strategy string

	// tracer collects per-query spans, the recent-query ring, and the
	// slow-query log; mon is the optional monitoring HTTP server
	// ("set metrics_addr"). pprof mounts /debug/pprof on the next
	// metrics server ("set pprof on", then "set metrics_addr ...").
	tracer *obs.Tracer
	mon    *obs.Server
	pprof  bool

	// plans is the session plan cache shared by plan/explain/prepare/
	// execute; nil when disabled ("set plan_cache off"). Stats-epoch
	// invalidation makes it safe across table loads, restores and index
	// builds within the session.
	plans *plancache.Cache

	// prepared holds named statements ("prepare NAME EXPR"); execute
	// re-plans them, which is where the cache pays off.
	prepared map[string]*preparedStmt
}

type preparedStmt struct {
	src string
	q   *expr.Node
}

// NewShell returns a shell writing to out.
func NewShell(out io.Writer) *Shell {
	return &Shell{
		cat:      storage.NewCatalog(),
		out:      out,
		tracer:   obs.NewTracer(),
		plans:    plancache.New(plancache.DefaultCapacity),
		prepared: make(map[string]*preparedStmt),
	}
}

// Close releases the shell's background resources: the monitoring
// server and the trace file (flushed by Disable).
func (s *Shell) Close() error {
	if s.mon != nil {
		s.mon.Close()
		s.mon = nil
	}
	return s.tracer.Disable()
}

// Run processes commands line by line until EOF or \q.
func (s *Shell) Run(in io.Reader, prompt bool) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if prompt {
			fmt.Fprint(s.out, "oj> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if line == `\q` || line == "quit" || line == "exit" {
			return nil
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
}

// Exec runs one command.
func (s *Shell) Exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(cmd) {
	case "help", `\h`:
		s.help()
		return nil
	case "table":
		return s.cmdTable(rest)
	case "index":
		return s.cmdIndex(rest)
	case "load":
		return s.cmdLoad(rest)
	case "save":
		return s.cmdSave(rest)
	case "dump":
		if rest == "" {
			return fmt.Errorf("usage: dump file.fjdb")
		}
		if err := storage.SaveCatalogFile(rest, s.cat); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "snapshot written to %s\n", rest)
		return nil
	case "restore":
		if rest == "" {
			return fmt.Errorf("usage: restore file.fjdb")
		}
		cat, err := storage.LoadCatalogFile(rest)
		if err != nil {
			return err
		}
		s.cat = cat
		fmt.Fprintf(s.out, "restored %d tables from %s\n", len(cat.Tables()), rest)
		return nil
	case "tables":
		for _, n := range s.cat.Tables() {
			t, _ := s.cat.Table(n)
			fmt.Fprintf(s.out, "%s%s  (%d rows)\n", n, t.Scheme(), t.Relation().Len())
		}
		return nil
	case "query", "eval":
		return s.cmdQuery(rest)
	case "graph":
		return s.cmdGraph(rest)
	case "analyze":
		return s.cmdAnalyze(rest)
	case "plan":
		return s.cmdPlan(rest)
	case "explain":
		return s.cmdExplain(rest)
	case "prepare":
		return s.cmdPrepare(rest)
	case "execute":
		return s.cmdExecute(rest)
	case "set":
		return s.cmdSet(rest)
	case "metrics":
		obs.Default.WritePrometheus(s.out)
		return nil
	case "trace":
		return s.cmdTrace(rest)
	case "trees":
		return s.cmdTrees(rest)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  table NAME(col, ...) = (v, ...), (v, ...)   define a table; null for nulls
  load NAME file.csv                          import a table from CSV
  save NAME file.csv                          export a table to CSV
  dump file.fjdb / restore file.fjdb          snapshot / restore the whole catalog
  index NAME col                              build a hash index
  tables                                      list tables
  query   EXPR                                evaluate an expression
  graph   EXPR                                show the query graph
  analyze EXPR                                free-reorderability analysis
  trees   EXPR                                list the implementing trees
  plan    EXPR                                optimize, explain and execute
  explain EXPR                                show the chosen plan and optimizer trace
  explain analyze EXPR                        run the plan with per-operator statistics
  prepare NAME EXPR                           parse and plan a named query once
  execute NAME                                run a prepared query (plan-cache hit)
  set plan_cache on|off|N                     toggle the plan cache / set its capacity
  set timeout DUR|off                         execution deadline (e.g. 500ms, 2s)
  set memory_limit N[KB|MB]|off               executor memory budget
  set spill on|off                            spill to disk on memory budget trips
  set spill_dir DIR|off                       directory for spill run files
  set strategy dp|yannakakis|auto             planner for reorderable queries
  set batch_size N|off|default                rows per execution batch (off = row-at-a-time)
  set metrics_addr ADDR|off                   HTTP /metrics, /debug/queries, /healthz
  set pprof on|off                            mount /debug/pprof on the next metrics_addr
  set slow_query DUR|off                      log queries slower than DUR
  set slow_query_log FILE [CAP]|off           slow-query JSONL file, rotated at CAP bytes
  set                                         show current limits
  metrics                                     print the metrics in Prometheus text form
  trace on FILE | trace off                   export query spans as Chrome trace JSON
  help / quit

expressions:  (R -[R.a = S.a] S) ->[S.b = T.b] T
operators:    -[p] join,  ->[p] left outerjoin,  <-[p] right outerjoin
restriction:  sigma[R.a = 1](R ->[R.a = S.a] S)
`)
}

// cmdTable parses "NAME(col, col) = (1, 'x'), (2, null)".
func (s *Shell) cmdTable(rest string) error {
	name, rel, err := parse.TableLiteral(rest)
	if err != nil {
		return err
	}
	s.cat.AddRelation(name, rel)
	fmt.Fprintf(s.out, "table %s: %d rows\n", name, rel.Len())
	return nil
}

func (s *Shell) cmdLoad(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: load NAME file.csv")
	}
	t, err := s.cat.LoadCSVFile(parts[0], parts[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "table %s: %d rows from %s\n", parts[0], t.Relation().Len(), parts[1])
	return nil
}

func (s *Shell) cmdSave(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: save NAME file.csv")
	}
	if err := s.cat.SaveCSVFile(parts[0], parts[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "wrote %s\n", parts[1])
	return nil
}

func (s *Shell) cmdIndex(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return fmt.Errorf("usage: index TABLE col")
	}
	t, err := s.cat.Table(parts[0])
	if err != nil {
		return err
	}
	if _, err := t.BuildHashIndex(parts[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "hash index on %s.%s\n", parts[0], parts[1])
	return nil
}

func (s *Shell) cmdQuery(rest string) error {
	qt := s.tracer.Start(rest)
	parseDone := qt.Span("parse")
	q, err := parse.Expr(rest)
	parseDone()
	if err != nil {
		qt.Finish(err)
		return err
	}
	execDone := qt.Span("execute")
	out, err := q.Eval(s.cat)
	execDone()
	if err == nil {
		qt.Rec.Rows = int64(out.Len())
	}
	qt.Finish(err)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

func (s *Shell) cmdGraph(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	g, err := expr.GraphOf(q)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, g)
	return nil
}

func (s *Shell) cmdAnalyze(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	a, err := core.Analyze(q)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, a)
	return nil
}

func (s *Shell) cmdTrees(rest string) error {
	q, err := parse.Expr(rest)
	if err != nil {
		return err
	}
	g, err := expr.GraphOf(q)
	if err != nil {
		return err
	}
	n, err := expr.CountITs(g, true)
	if err != nil {
		return err
	}
	if n > 200 {
		return fmt.Errorf("%d trees; refusing to list more than 200", n)
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		return err
	}
	for i, it := range its {
		marker := " "
		if it.Equal(q) {
			marker = "*"
		}
		fmt.Fprintf(s.out, "%s %3d: %s\n", marker, i+1, it)
	}
	return nil
}

// cmdSet adjusts the session resource limits: "set timeout 500ms",
// "set memory_limit 64KB", "set ... off", or bare "set" to show them.
func (s *Shell) cmdSet(rest string) error {
	if rest == "" {
		addr := ""
		if s.mon != nil {
			addr = s.mon.Addr()
		}
		slow := s.tracer.Slow().Threshold()
		cacheState := "off"
		if s.plans != nil {
			cacheState = fmt.Sprintf("on (cap %d, %d cached)", s.plans.Cap(), s.plans.Len())
		}
		strategy := s.strategy
		if strategy == "" {
			strategy = "dp"
		}
		fmt.Fprintf(s.out, "timeout: %s\nmemory_limit: %s\nspill: %s\nspill_dir: %s\nstrategy: %s\nbatch_size: %s\nmetrics_addr: %s\nslow_query: %s\nplan_cache: %s\n",
			orOff(s.timeout.String(), s.timeout == 0),
			orOff(fmt.Sprintf("%d bytes", s.memLimit), s.memLimit == 0),
			orOff("on", !s.spill),
			orOff(s.spillDir, s.spillDir == ""),
			strategy,
			batchSizeString(s.batchSize),
			orOff(addr, s.mon == nil),
			orOff(slow.String(), slow == 0),
			cacheState)
		return nil
	}
	name, val, _ := strings.Cut(rest, " ")
	val = strings.TrimSpace(val)
	switch strings.ToLower(name) {
	case "timeout":
		if strings.EqualFold(val, "off") {
			s.timeout = 0
			fmt.Fprintln(s.out, "timeout off")
			return nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("usage: set timeout DUR|off (e.g. 500ms)")
		}
		s.timeout = d
		fmt.Fprintf(s.out, "timeout %s\n", d)
		return nil
	case "memory_limit":
		if strings.EqualFold(val, "off") {
			s.memLimit = 0
			fmt.Fprintln(s.out, "memory_limit off")
			return nil
		}
		n, err := parse.Bytes(val)
		if err != nil {
			return err
		}
		s.memLimit = n
		fmt.Fprintf(s.out, "memory_limit %d bytes\n", n)
		return nil
	case "spill":
		switch {
		case strings.EqualFold(val, "on"):
			s.spill = true
			fmt.Fprintln(s.out, "spill on")
			return nil
		case strings.EqualFold(val, "off"):
			s.spill = false
			fmt.Fprintln(s.out, "spill off")
			return nil
		default:
			return fmt.Errorf("usage: set spill on|off")
		}
	case "spill_dir":
		if strings.EqualFold(val, "off") || val == "" {
			s.spillDir = ""
			fmt.Fprintln(s.out, "spill_dir off (OS temp dir)")
			return nil
		}
		s.spillDir = val
		fmt.Fprintf(s.out, "spill_dir %s\n", val)
		return nil
	case "strategy":
		switch strings.ToLower(val) {
		case "dp":
			s.strategy = ""
			fmt.Fprintln(s.out, "strategy dp")
			return nil
		case "yannakakis", "auto":
			s.strategy = strings.ToLower(val)
			fmt.Fprintf(s.out, "strategy %s\n", s.strategy)
			return nil
		default:
			return fmt.Errorf("usage: set strategy dp|yannakakis|auto")
		}
	case "batch_size":
		switch {
		case strings.EqualFold(val, "off"):
			s.batchSize = optimizer.BatchOff
		case strings.EqualFold(val, "default") || strings.EqualFold(val, "on"):
			s.batchSize = 0
		default:
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("usage: set batch_size N|off|default")
			}
			s.batchSize = n
		}
		fmt.Fprintf(s.out, "batch_size %s\n", batchSizeString(s.batchSize))
		return nil
	case "metrics_addr":
		if s.mon != nil {
			s.mon.Close()
			s.mon = nil
		}
		if strings.EqualFold(val, "off") {
			fmt.Fprintln(s.out, "metrics_addr off")
			return nil
		}
		if val == "" {
			return fmt.Errorf("usage: set metrics_addr HOST:PORT|off (e.g. 127.0.0.1:9090)")
		}
		srv, err := obs.StartServerOpts(val, obs.ServerOptions{Tracer: s.tracer, Pprof: s.pprof})
		if err != nil {
			return err
		}
		s.mon = srv
		endpoints := "/metrics, /debug/queries, /healthz"
		if s.pprof {
			endpoints += ", /debug/pprof"
		}
		fmt.Fprintf(s.out, "serving %s on %s\n", endpoints, srv.Addr())
		return nil
	case "pprof":
		switch {
		case strings.EqualFold(val, "on"):
			s.pprof = true
			fmt.Fprintln(s.out, "pprof on (applies to the next set metrics_addr)")
			return nil
		case strings.EqualFold(val, "off"):
			s.pprof = false
			fmt.Fprintln(s.out, "pprof off (applies to the next set metrics_addr)")
			return nil
		default:
			return fmt.Errorf("usage: set pprof on|off")
		}
	case "plan_cache":
		switch {
		case strings.EqualFold(val, "off"):
			s.plans = nil
			fmt.Fprintln(s.out, "plan_cache off")
			return nil
		case strings.EqualFold(val, "on"):
			if s.plans == nil {
				s.plans = plancache.New(plancache.DefaultCapacity)
			}
			fmt.Fprintf(s.out, "plan_cache on (cap %d)\n", s.plans.Cap())
			return nil
		default:
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("usage: set plan_cache on|off|N")
			}
			s.plans = plancache.New(n)
			fmt.Fprintf(s.out, "plan_cache on (cap %d)\n", n)
			return nil
		}
	case "slow_query":
		if strings.EqualFold(val, "off") {
			s.tracer.Slow().SetThreshold(0)
			fmt.Fprintln(s.out, "slow_query off")
			return nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("usage: set slow_query DUR|off (e.g. 100ms)")
		}
		s.tracer.Slow().SetThreshold(d)
		s.tracer.Slow().SetText(s.out)
		fmt.Fprintf(s.out, "slow_query %s\n", d)
		return nil
	case "slow_query_log":
		if strings.EqualFold(val, "off") || val == "" {
			if err := s.tracer.Slow().SetJSONFile("", 0); err != nil {
				return err
			}
			fmt.Fprintln(s.out, "slow_query_log off")
			return nil
		}
		// Optional size cap after the path: "set slow_query_log q.jsonl 16MB".
		path, capStr, _ := strings.Cut(val, " ")
		maxBytes := int64(64 << 20)
		if capStr = strings.TrimSpace(capStr); capStr != "" {
			n, err := parse.Bytes(capStr)
			if err != nil {
				return err
			}
			maxBytes = n
		}
		if err := s.tracer.Slow().SetJSONFile(path, maxBytes); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "slow_query_log %s (rotate at %d bytes)\n", path, maxBytes)
		return nil
	default:
		return fmt.Errorf("usage: set timeout|memory_limit|spill|spill_dir|strategy|batch_size|metrics_addr|pprof|slow_query|slow_query_log|plan_cache VALUE|off")
	}
}

func orOff(s string, off bool) string {
	if off {
		return "off"
	}
	return s
}

// batchSizeString renders the batch-size setting: "off" for the
// row-at-a-time mode, the default size when unset, or the explicit
// rows-per-batch count.
func batchSizeString(n int) string {
	switch {
	case n == optimizer.BatchOff:
		return "off"
	case n == 0:
		return fmt.Sprintf("%d (default)", exec.DefaultBatchSize)
	default:
		return strconv.Itoa(n)
	}
}

// execContext builds the execution context for the session's limits; the
// returned cancel must be called when the execution finishes. A session
// with no limits gets a nil context (the ungoverned fast path).
func (s *Shell) execContext() (*exec.ExecContext, context.CancelFunc) {
	if s.timeout == 0 && s.memLimit == 0 && !s.spill {
		return nil, func() {}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	var gov *exec.Governor
	if s.memLimit > 0 {
		gov = exec.NewGovernor(0, s.memLimit)
	}
	ec := exec.NewExecContext(ctx, gov)
	if s.spill {
		ec.EnableSpill(exec.SpillConfig{Dir: s.spillDir})
	}
	return ec, cancel
}

// newOptimizer builds an optimizer carrying the session's planner
// configuration (plan cache, spill mode).
func (s *Shell) newOptimizer() *optimizer.Optimizer {
	o := optimizer.New(s.cat)
	o.Cache = s.plans
	o.Spill = s.spill
	o.Strategy = s.strategy
	o.BatchSize = s.batchSize
	return o
}

// cmdExplain handles "explain EXPR" (plan plus optimizer trace, no
// execution) and "explain analyze EXPR" (instrumented execution with
// per-operator actual rows, tuples, peak memory, time and q-error).
func (s *Shell) cmdExplain(rest string) error {
	analyze := false
	if after, ok := strings.CutPrefix(rest, "analyze "); ok {
		analyze = true
		rest = strings.TrimSpace(after)
	} else if rest == "analyze" {
		rest = ""
	}
	if rest == "" {
		return fmt.Errorf("usage: explain [analyze] EXPR")
	}
	// Only "explain analyze" executes, so only it counts as a query in
	// the tracer; a nil trace records nothing.
	var qt *obs.QueryTrace
	if analyze {
		qt = s.tracer.Start("explain analyze " + rest)
	}
	parseDone := qt.Span("parse")
	q, err := parse.Expr(rest)
	parseDone()
	if err != nil {
		qt.Finish(err)
		return err
	}
	o := s.newOptimizer()
	t0 := time.Now()
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		qt.Finish(err)
		return err
	}
	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
	if !analyze {
		fmt.Fprint(s.out, optimizer.Explain(p, tr))
		return nil
	}
	ec, cancel := s.execContext()
	defer cancel()
	_, _, text, err := o.ExplainAnalyzeTraced(ec, p, tr, qt)
	qt.Finish(err)
	// On an aborted run the text still renders the partial tree and the
	// tripping operator; print it before surfacing the error.
	fmt.Fprint(s.out, text)
	return err
}

func (s *Shell) cmdPlan(rest string) error {
	qt := s.tracer.Start("plan " + rest)
	parseDone := qt.Span("parse")
	q, err := parse.Expr(rest)
	parseDone()
	if err != nil {
		qt.Finish(err)
		return err
	}
	o := s.newOptimizer()
	t0 := time.Now()
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		qt.Finish(err)
		return err
	}
	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
	fmt.Fprintf(s.out, "reordered: %v\nplan: %s\n%s", tr.Reordered(), p.Tree(), p.Explain())
	ec, cancel := s.execContext()
	defer cancel()
	var out *relation.Relation
	var c *exec.Counters
	qt.SetLabels(tr.Strategy, tr.Fingerprint)
	if s.tracer.Enabled() {
		// Span export wants per-operator spans, which only the
		// instrumented path produces (it also fills the query record).
		out, c, _, err = o.ExplainAnalyzeTraced(ec, p, tr, qt)
	} else {
		var cc exec.Counters
		qt.AttachProgress(cc.RowsProduced, cc.TuplesRetrieved, ec.Governor())
		execDone := qt.Span("execute")
		obs.WithQueryLabels(context.Background(), qt.Rec.ID, tr.Fingerprint, tr.Strategy,
			func(context.Context) { out, err = o.ExecuteCtxCounted(ec, p, &cc) })
		execDone()
		c = &cc
		qt.Rec.Strategy = tr.Strategy
		qt.Rec.FallbackReason = tr.FallbackReason
		qt.Rec.PlanTree = p.Tree()
		qt.Rec.Rows = c.RowsProduced()
		qt.Rec.Tuples = c.TuplesRetrieved()
	}
	qt.Finish(err)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "tuples retrieved: %d\n", c.TuplesRetrieved())
	fmt.Fprint(s.out, out)
	return nil
}

// cmdPrepare parses "NAME EXPR", plans the expression once (warming the
// plan cache), and stores it for execute. Re-preparing a name replaces
// the old statement.
func (s *Shell) cmdPrepare(rest string) error {
	name, src, found := strings.Cut(rest, " ")
	src = strings.TrimSpace(src)
	if !found || name == "" || src == "" {
		return fmt.Errorf("usage: prepare NAME EXPR")
	}
	q, err := parse.Expr(src)
	if err != nil {
		return err
	}
	o := s.newOptimizer()
	_, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return err
	}
	s.prepared[name] = &preparedStmt{src: src, q: q}
	if tr.CacheOutcome != "" {
		fmt.Fprintf(s.out, "prepared %s (plan cache %s, fp %s)\n", name, tr.CacheOutcome, tr.Fingerprint)
	} else {
		fmt.Fprintf(s.out, "prepared %s\n", name)
	}
	return nil
}

// cmdExecute re-plans a prepared statement — a plan-cache hit unless the
// catalog's statistics changed underneath it — and runs it under the
// session's resource limits.
func (s *Shell) cmdExecute(rest string) error {
	name := strings.TrimSpace(rest)
	if name == "" {
		return fmt.Errorf("usage: execute NAME")
	}
	ps, ok := s.prepared[name]
	if !ok {
		return fmt.Errorf("no prepared query %q (use prepare NAME EXPR)", name)
	}
	qt := s.tracer.Start("execute " + name + ": " + ps.src)
	o := s.newOptimizer()
	t0 := time.Now()
	p, tr, err := o.PlanQueryTrace(ps.q)
	if err != nil {
		qt.Finish(err)
		return err
	}
	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
	ec, cancel := s.execContext()
	defer cancel()
	var c exec.Counters
	qt.SetLabels(tr.Strategy, tr.Fingerprint)
	qt.AttachProgress(c.RowsProduced, c.TuplesRetrieved, ec.Governor())
	execDone := qt.Span("execute")
	var out *relation.Relation
	obs.WithQueryLabels(context.Background(), qt.Rec.ID, tr.Fingerprint, tr.Strategy,
		func(context.Context) { out, err = o.ExecuteCtxCounted(ec, p, &c) })
	execDone()
	qt.Rec.Strategy = tr.Strategy
	qt.Rec.FallbackReason = tr.FallbackReason
	qt.Rec.PlanTree = p.Tree()
	qt.Rec.Rows = c.RowsProduced()
	qt.Rec.Tuples = c.TuplesRetrieved()
	qt.Finish(err)
	if err != nil {
		return err
	}
	if tr.CacheOutcome != "" {
		fmt.Fprintf(s.out, "plan cache: %s (fp %s)\n", tr.CacheOutcome, tr.Fingerprint)
	}
	fmt.Fprintf(s.out, "tuples retrieved: %d\n", c.TuplesRetrieved())
	fmt.Fprint(s.out, out)
	return nil
}

// cmdTrace toggles Chrome trace-event span export.
func (s *Shell) cmdTrace(rest string) error {
	arg, path, _ := strings.Cut(rest, " ")
	path = strings.TrimSpace(path)
	switch strings.ToLower(arg) {
	case "on":
		if path == "" {
			return fmt.Errorf("usage: trace on FILE | trace off")
		}
		s.tracer.Enable(path)
		fmt.Fprintf(s.out, "tracing to %s (load in chrome://tracing or ui.perfetto.dev)\n", path)
		return nil
	case "off":
		if err := s.tracer.Disable(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "tracing off")
		return nil
	default:
		return fmt.Errorf("usage: trace on FILE | trace off")
	}
}
