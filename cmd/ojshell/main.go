// Command ojshell is an interactive shell over the join/outerjoin
// engine: define tables and indexes, evaluate expressions, inspect query
// graphs, check free reorderability, and run the optimizer.
//
//	$ ojshell
//	oj> table R(a) = (1), (2)
//	oj> table S(a) = (2), (3)
//	oj> query R ->[R.a = S.a] S
//	oj> analyze R ->[R.a = S.a] S
package main

import (
	"fmt"
	"os"

	"freejoin/internal/exec/spill"
)

func main() {
	// A previous shell killed mid-query may have orphaned spill run
	// files; reclaim the disk before this session writes its own.
	if n, err := spill.SweepStale(os.TempDir(), 0); err == nil && n > 0 {
		fmt.Fprintf(os.Stderr, "ojshell: swept %d stale spill file(s)\n", n)
	}
	sh := NewShell(os.Stdout)
	defer sh.Close()
	fmt.Println("freejoin shell — type help for commands, quit to exit")
	if err := sh.Run(os.Stdin, true); err != nil {
		sh.Close()
		fmt.Fprintln(os.Stderr, "ojshell:", err)
		os.Exit(1)
	}
}
