package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The acceptance path of the observability PR: run queries through the
// shell, then check the metrics text, the trace file, and the
// monitoring endpoint actually reflect them.

func TestShellMetricsCommand(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
query R ->[R.a = S.a] S
plan R -[R.a = S.a] S
metrics
quit
`)
	// Lifecycle counters are process-wide, so other tests contribute too;
	// the property is that after two queries they are non-zero and the
	// strategy and latency families are present.
	re := regexp.MustCompile(`oj_queries_completed_total (\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil || m[1] == "0" {
		t.Fatalf("metrics output missing non-zero oj_queries_completed_total:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE oj_queries_completed_total counter",
		`oj_optimize_strategy_total{strategy="reordered"}`,
		"# TYPE oj_query_duration_seconds histogram",
		`oj_query_duration_seconds_bucket{le="+Inf"}`,
		"oj_rows_produced_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestShellTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runScript(t, fmt.Sprintf(`
table R(a) = (1), (2)
table S(a) = (2), (3)
trace on %s
explain analyze R ->[R.a = S.a] S
trace off
quit
`, path))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	phases := map[string]bool{}
	operators := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "phase":
			phases[ev.Name] = true
		case "operator":
			operators++
		}
	}
	for _, want := range []string{"parse", "analyze", "optimize", "build", "execute"} {
		if !phases[want] {
			t.Errorf("trace missing %q phase span; phases = %v", want, phases)
		}
	}
	// R ⟕ S under the DP: at least the two scans and the join.
	if operators < 3 {
		t.Errorf("trace has %d operator spans, want >= 3", operators)
	}
}

func TestShellMetricsAddr(t *testing.T) {
	var out strings.Builder
	sh := NewShell(&out)
	defer sh.Close()
	script := `
table R(a) = (1), (2)
set metrics_addr 127.0.0.1:0
query R
set
`
	if err := sh.Run(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	if sh.mon == nil {
		t.Fatalf("monitoring server not started:\n%s", out.String())
	}
	addr := sh.mon.Addr()
	if !strings.Contains(out.String(), addr) {
		t.Errorf("shell output does not echo the bound address %s:\n%s", addr, out.String())
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "oj_queries_started_total") {
		t.Errorf("/metrics missing query counters:\n%s", body)
	}
	resp, err = http.Get("http://" + addr + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var recs []struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("/debug/queries is not JSON: %v", err)
	}
	resp.Body.Close()
	if len(recs) == 0 || recs[0].Query != "R" {
		t.Errorf("/debug/queries = %v, want newest query %q first", recs, "R")
	}
	if err := sh.Exec("set metrics_addr off"); err != nil {
		t.Fatal(err)
	}
	if sh.mon != nil {
		t.Error("metrics_addr off must stop the server")
	}
}

func TestShellSlowQueryLog(t *testing.T) {
	out := runScript(t, `
table R(a) = (1), (2)
table S(a) = (2), (3)
set slow_query 1ns
plan R -[R.a = S.a] S
set slow_query off
plan R -[R.a = S.a] S
quit
`)
	if n := strings.Count(out, "slow query ("); n != 1 {
		t.Errorf("want exactly 1 slow-query entry (second run has the log off), got %d:\n%s", n, out)
	}
	for _, want := range []string{"strategy: reordered", "plan: ", "rows: "} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query entry missing %q:\n%s", want, out)
		}
	}
}

func TestShellSetShowsObsSettings(t *testing.T) {
	out := runScript(t, `
set
set slow_query 250ms
set
quit
`)
	if !strings.Contains(out, "metrics_addr: off") || !strings.Contains(out, "slow_query: off") {
		t.Errorf("bare set must show observability settings as off initially:\n%s", out)
	}
	if !strings.Contains(out, "slow_query: 250ms") {
		t.Errorf("bare set must show the configured threshold:\n%s", out)
	}
}
