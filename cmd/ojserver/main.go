// Command ojserver is the long-running concurrent query server: many
// TCP sessions speaking the ojshell command syntax (one JSON response
// line per command) over one shared catalog, plan cache and admission
// controller.
//
//	$ ojserver -addr 127.0.0.1:7432 -metrics-addr 127.0.0.1:9090 \
//	    -max-concurrent 8 -pool 64MB -query-mem 8MB
//	$ printf 'table R(a) = (1), (2)\ntable S(a) = (2), (3)\nquery R -[R.a = S.a] S\nquit\n' | nc 127.0.0.1 7432
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strconv"

	"freejoin/internal/chaos"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7432", "TCP address for the query protocol")
		metricsAddr = flag.String("metrics-addr", "", "HTTP /metrics, /debug/queries, /healthz address (off when empty)")
		maxConc     = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "concurrent query slots")
		queueDepth  = flag.Int("queue-depth", server.DefaultQueueDepth, "admission wait-queue bound (negative disables waiting)")
		pool        = flag.String("pool", "", "process-wide memory pool, e.g. 64MB (empty = unlimited)")
		spillPool   = flag.String("spill-pool", "", "process-wide spill pool, e.g. 256MB (empty = unlimited)")
		queryMem    = flag.String("query-mem", "", "default per-query memory grant, e.g. 8MB (empty = ungoverned)")
		querySpill  = flag.String("query-spill", "", "per-query spill grant when spill is on (empty = ungoverned)")
		timeout     = flag.Duration("timeout", 0, "default per-query deadline, admission wait included (0 = none)")
		planCache   = flag.Int("plan-cache", 0, "shared plan-cache capacity (0 = default, negative = off)")
		spill       = flag.Bool("spill", false, "default spill-to-disk mode for new sessions")
		spillDir    = flag.String("spill-dir", "", "spill run-file directory (empty = OS temp dir)")
		strategy    = flag.String("strategy", "", "default planner strategy: dp, yannakakis or auto (empty = dp)")
		batchSize   = flag.String("batch-size", "", "rows per execution batch: N, off, or default (empty = default)")
		restore     = flag.String("restore", "", "catalog snapshot (.fjdb) to restore at startup")

		idleTimeout  = flag.Duration("idle-timeout", 0, "disconnect idle sessions (0 = default 5m, negative = off)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = default 30s, negative = off)")
		maxLine      = flag.String("max-line", "", "longest accepted protocol line, e.g. 1MB (empty = default)")
		shedWait     = flag.Duration("shed-wait", 0, "shed load when smoothed queue wait exceeds this (0 = off)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on SIGTERM")

		chaosSeed = flag.Int64("chaos-seed", 0, "dev mode: seed for network fault injection (needs -chaos-rate)")
		chaosRate = flag.Float64("chaos-rate", 0, "dev mode: per-I/O fault probability in [0,1] (0 = off)")

		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof on the metrics address (needs -metrics-addr)")
		runtimeSamp = flag.Duration("runtime-metrics", 0, "background runtime/metrics sampling period (0 = scrape-time only)")
		slowQuery   = flag.Duration("slow-query", 0, "slow-query threshold (0 = off)")
		slowLog     = flag.String("slow-query-log", "", "slow-query JSONL file, size-capped with rotation (empty = off)")
		slowLogMax  = flag.String("slow-query-log-max", "", "slow-query log size cap before rotation, e.g. 64MB (empty = default)")
	)
	flag.Parse()

	cfg := server.Config{
		Addr:          *addr,
		MetricsAddr:   *metricsAddr,
		MaxConcurrent: *maxConc,
		QueueDepth:    *queueDepth,
		Timeout:       *timeout,
		PlanCache:     *planCache,
		Spill:         *spill,
		SpillDir:      *spillDir,
		Strategy:      *strategy,
		SnapshotPath:  *restore,
		IdleTimeout:   *idleTimeout,
		WriteTimeout:  *writeTimeout,
		ShedWait:      *shedWait,
		Pprof:         *pprofOn,
		RuntimeSample: *runtimeSamp,
		SlowQuery:     *slowQuery,
		SlowQueryLog:  *slowLog,
	}
	switch cfg.Strategy {
	case "", "dp", "yannakakis", "auto":
	default:
		fmt.Fprintf(os.Stderr, "ojserver: unknown -strategy %q (want dp, yannakakis or auto)\n", cfg.Strategy)
		os.Exit(2)
	}
	switch *batchSize {
	case "", "default", "on":
	case "off":
		cfg.BatchSize = optimizer.BatchOff
	default:
		n, err := strconv.Atoi(*batchSize)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "ojserver: bad -batch-size %q (want N, off or default)\n", *batchSize)
			os.Exit(2)
		}
		cfg.BatchSize = n
	}
	if *slowLogMax != "" {
		n, err := parse.Bytes(*slowLogMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ojserver:", err)
			os.Exit(2)
		}
		cfg.SlowQueryLogMaxBytes = n
	}
	if *maxLine != "" {
		n, err := parse.Bytes(*maxLine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ojserver:", err)
			os.Exit(2)
		}
		cfg.MaxLineBytes = int(n)
	}
	if *chaosRate > 0 {
		// Fault injection is a dev/test mode: every accepted connection
		// suffers seeded, replayable network faults.
		cfg.Chaos = &chaos.Config{Seed: *chaosSeed, Rate: *chaosRate}
		fmt.Fprintf(os.Stderr, "ojserver: CHAOS MODE: injecting faults at rate %g (seed %d)\n",
			*chaosRate, *chaosSeed)
	}
	for _, f := range []struct {
		val string
		dst *int64
	}{
		{*pool, &cfg.PoolBytes},
		{*spillPool, &cfg.SpillPoolBytes},
		{*queryMem, &cfg.QueryMemBytes},
		{*querySpill, &cfg.QuerySpillBytes},
	} {
		if f.val == "" {
			continue
		}
		n, err := parse.Bytes(f.val)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ojserver:", err)
			os.Exit(2)
		}
		*f.dst = n
	}

	srv, err := server.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ojserver:", err)
		os.Exit(1)
	}
	if n := srv.SweptSpillFiles(); n > 0 {
		fmt.Fprintf(os.Stderr, "ojserver: swept %d stale spill file(s)\n", n)
	}
	fmt.Printf("ojserver: serving on %s", srv.Addr())
	if srv.MetricsAddr() != "" {
		fmt.Printf(", metrics on %s", srv.MetricsAddr())
	}
	fmt.Println()

	// Block until SIGINT/SIGTERM, then drain gracefully: stop accepting,
	// reject new queries with the typed "draining" code, finish in-flight
	// work, then exit. The drain timeout bounds the wait; on expiry the
	// remainder is cut off hard.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "ojserver: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ojserver: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ojserver: drained")
}
