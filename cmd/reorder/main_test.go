package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"freejoin/internal/obs"
)

func TestRunAnalysis(t *testing.T) {
	var out strings.Builder
	err := run(&out, "(R -[R.a = S.a] S) ->[S.a = T.a] T", true, true, true, 1000, false, false, 0, 0, "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"freely reorderable",
		"implementing trees: 2 (modulo reversal)",
		"((R - S) -> T)",
		"(R - (S -> T))",
		"digraph query",
		"*   1:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFullEnumeration(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "R -[R.a = S.a] S", true, false, false, 1000, false, false, 0, 0, "", "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "implementing trees: 2\n") {
		t.Errorf("full enumeration output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "R -[", false, false, true, 1000, false, false, 0, 0, "", "", nil); err == nil {
		t.Error("parse error must surface")
	}
	if err := run(&out, "R -[R.a = 1] S", false, false, true, 1000, false, false, 0, 0, "", "", nil); err == nil {
		t.Error("undefined graph must surface")
	}
	// Limit enforcement.
	big := "A"
	for i := 1; i < 10; i++ {
		u := string(rune('A' + i - 1))
		v := string(rune('A' + i))
		big = "(" + big + " -[" + u + ".a = " + v + ".a] " + v + ")"
	}
	if err := run(&out, big, true, false, true, 10, false, false, 0, 0, "", "", nil); err == nil {
		t.Error("limit must be enforced")
	}
}

func TestRunExplain(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "(R -[R.a = S.a] S) ->[S.a = T.a] T", false, false, true, 1000, true, false, 0, 0, "", "", nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"plan (synthetic catalog",
		"-- strategy: reordered",
		"-- dp: ",
		"scan ",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestRunNonNice(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "R ->[R.a = S.a] (S -[S.a = T.a] T)", false, false, true, 1000, false, false, 0, 0, "", "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT provably freely reorderable") {
		t.Errorf("non-nice analysis missing:\n%s", out.String())
	}
}

// TestRunTraced drives -explain with a tracer configured the way the
// -trace-out and -slow-query flags do, and checks the trace file and
// the slow log both materialize.
func TestRunTraced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tracer := obs.NewTracer()
	tracer.Enable(path)
	var slow strings.Builder
	tracer.Slow().SetThreshold(time.Nanosecond)
	tracer.Slow().SetText(&slow)

	var out strings.Builder
	if err := run(&out, "(R -[R.a = S.a] S) ->[S.a = T.a] T", false, false, true, 1000, true, false, 0, 0, "", "", tracer); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Disable(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	phases, operators := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "phase":
			phases++
		case "operator":
			operators++
		}
	}
	if phases < 4 || operators < 3 {
		t.Errorf("trace has %d phase and %d operator spans, want >=4 and >=3", phases, operators)
	}
	if !strings.Contains(slow.String(), "slow query (") ||
		!strings.Contains(slow.String(), "strategy: reordered") {
		t.Errorf("slow log missing entry:\n%s", slow.String())
	}
}

// -plan-cache replans the query after the first optimization: the
// second pass must hit the cache by canonical fingerprint and return
// the identical plan object.
func TestRunExplainPlanCache(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "(R -[R.a = S.a] S) ->[S.a = T.a] T", false, false, true, 1000, true, true, 0, 0, "", "", nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "plancache: miss (fp ") {
		t.Errorf("first plan must trace the cold miss:\n%s", got)
	}
	if !strings.Contains(got, "re-plan: plan cache hit (fp ") || !strings.Contains(got, "plan object reused") {
		t.Errorf("re-plan must hit and reuse the plan:\n%s", got)
	}
}
