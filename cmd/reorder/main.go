// Command reorder analyzes a join/outerjoin expression: it derives the
// query graph, checks the free-reorderability theorem's preconditions,
// counts and optionally lists the implementing trees, and can emit the
// graph in Graphviz dot format.
//
// Usage:
//
//	reorder -q "(R -[R.a = S.a] S) ->[S.a = T.a] T" [-all] [-dot] [-modulo]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/parse"
)

func main() {
	var (
		query  = flag.String("q", "", "expression to analyze (required)")
		all    = flag.Bool("all", false, "list every implementing tree")
		dot    = flag.Bool("dot", false, "print the query graph in Graphviz dot syntax")
		modulo = flag.Bool("modulo", true, "count trees modulo reversal")
		limit  = flag.Int64("limit", 100000, "maximum trees to list with -all")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "usage: reorder -q \"(R -[R.a = S.a] S) ->[S.a = T.a] T\" [-all] [-dot]")
		os.Exit(2)
	}
	if err := run(os.Stdout, *query, *all, *dot, *modulo, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "reorder:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, query string, all, dot, modulo bool, limit int64) error {
	q, err := parse.Expr(query)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "expression:", q.StringWithPreds())

	analysis, err := core.Analyze(q)
	if err != nil {
		return fmt.Errorf("graph undefined: %w", err)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, analysis.Graph)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "analysis:", analysis)

	count, err := expr.CountITs(analysis.Graph, modulo)
	if err != nil {
		return err
	}
	suffix := ""
	if modulo {
		suffix = " (modulo reversal)"
	}
	fmt.Fprintf(w, "implementing trees: %d%s\n", count, suffix)

	if all {
		if count > limit {
			return fmt.Errorf("%d trees exceed -limit %d", count, limit)
		}
		its, err := expr.EnumerateITs(analysis.Graph, modulo)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		for i, it := range its {
			marker := " "
			if it.Equal(q) {
				marker = "*"
			}
			fmt.Fprintf(w, "%s %3d: %s\n", marker, i+1, it)
		}
	}
	if dot {
		fmt.Fprintln(w)
		fmt.Fprint(w, analysis.Graph.DOT())
	}
	return nil
}
