// Command reorder analyzes a join/outerjoin expression: it derives the
// query graph, checks the free-reorderability theorem's preconditions,
// counts and optionally lists the implementing trees, and can emit the
// graph in Graphviz dot format.
//
// Usage:
//
//	reorder -q "(R -[R.a = S.a] S) ->[S.a = T.a] T" [-all] [-dot] [-modulo]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/obs"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/plancache"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

func main() {
	var (
		query       = flag.String("q", "", "expression to analyze (required)")
		all         = flag.Bool("all", false, "list every implementing tree")
		dot         = flag.Bool("dot", false, "print the query graph in Graphviz dot syntax")
		modulo      = flag.Bool("modulo", true, "count trees modulo reversal")
		limit       = flag.Int64("limit", 100000, "maximum trees to list with -all")
		explain     = flag.Bool("explain", false, "plan over a synthetic catalog, execute with per-operator statistics, and print both")
		planCache   = flag.Bool("plan-cache", false, "with -explain: attach a plan cache and re-plan to show the fingerprint hit")
		timeout     = flag.Duration("timeout", 0, "deadline for the -explain execution (e.g. 500ms; 0 = none)")
		memLimit    = flag.Int64("mem-limit", 0, "memory budget in bytes for the -explain execution (0 = none)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/queries and /healthz on this address while the command runs")
		traceOut    = flag.String("trace-out", "", "write the -explain run's spans as Chrome trace JSON to this file")
		slowQuery   = flag.Duration("slow-query", 0, "log -explain executions slower than this to stderr (0 = off)")
		spillDir    = flag.String("spill-dir", "", "enable spill-to-disk for the -explain execution, writing run files to this directory (\"tmp\" = OS temp dir)")
		strategy    = flag.String("strategy", "", "planner strategy for -explain: dp, yannakakis or auto (empty = dp)")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof on the metrics address (needs -metrics-addr)")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "usage: reorder -q \"(R -[R.a = S.a] S) ->[S.a = T.a] T\" [-all] [-dot] [-explain] [-timeout 500ms] [-mem-limit 65536]")
		os.Exit(2)
	}
	tracer := obs.NewTracer()
	if *traceOut != "" {
		tracer.Enable(*traceOut)
	}
	if *slowQuery > 0 {
		tracer.Slow().SetThreshold(*slowQuery)
		tracer.Slow().SetText(os.Stderr)
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		s, err := obs.StartServerOpts(*metricsAddr, obs.ServerOptions{Tracer: tracer, Pprof: *pprofOn})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reorder:", err)
			os.Exit(1)
		}
		srv = s
		fmt.Fprintln(os.Stderr, "reorder: serving metrics on", srv.Addr())
	}
	err := run(os.Stdout, *query, *all, *dot, *modulo, *limit, *explain, *planCache, *timeout, *memLimit, *spillDir, *strategy, tracer)
	if ferr := tracer.Disable(); err == nil && ferr != nil {
		err = ferr
	}
	if srv != nil {
		srv.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "reorder:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, query string, all, dot, modulo bool, limit int64, explain, planCache bool, timeout time.Duration, memLimit int64, spillDir, strategy string, tracer *obs.Tracer) error {
	q, err := parse.Expr(query)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "expression:", q.StringWithPreds())

	analysis, err := core.Analyze(q)
	if err != nil {
		return fmt.Errorf("graph undefined: %w", err)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, analysis.Graph)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "analysis:", analysis)

	count, err := expr.CountITs(analysis.Graph, modulo)
	if err != nil {
		return err
	}
	suffix := ""
	if modulo {
		suffix = " (modulo reversal)"
	}
	fmt.Fprintf(w, "implementing trees: %d%s\n", count, suffix)

	if all {
		if count > limit {
			return fmt.Errorf("%d trees exceed -limit %d", count, limit)
		}
		its, err := expr.EnumerateITs(analysis.Graph, modulo)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		for i, it := range its {
			marker := " "
			if it.Equal(q) {
				marker = "*"
			}
			fmt.Fprintf(w, "%s %3d: %s\n", marker, i+1, it)
		}
	}
	if dot {
		fmt.Fprintln(w)
		fmt.Fprint(w, analysis.Graph.DOT())
	}
	if explain {
		if err := explainPlan(w, q, analysis.Graph, planCache, timeout, memLimit, spillDir, strategy, tracer); err != nil {
			return err
		}
	}
	return nil
}

// explainPlan plans the query over a synthetic catalog — every relation
// gets 1000 rows over the columns its predicates mention, each hash
// indexed — prints the chosen plan with the optimizer's decision trace,
// then executes it instrumented under the given resource limits (zero
// means unlimited) so a runaway implementing tree aborts with a typed
// resource error instead of running without bound.
func explainPlan(w io.Writer, q *expr.Node, g *graph.Graph, planCache bool, timeout time.Duration, memLimit int64, spillDir, strategy string, tracer *obs.Tracer) error {
	cols := map[string]map[string]struct{}{}
	for _, n := range g.Nodes() {
		cols[n] = map[string]struct{}{}
	}
	var walk func(n *expr.Node)
	walk = func(n *expr.Node) {
		if n == nil {
			return
		}
		if n.Pred != nil {
			for a := range n.Pred.Attrs() {
				if m, ok := cols[a.Rel]; ok {
					m[a.Name] = struct{}{}
				}
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(q)

	cat := storage.NewCatalog()
	for rel, m := range cols {
		names := make([]string, 0, len(m))
		for c := range m {
			names = append(names, c)
		}
		sort.Strings(names)
		if len(names) == 0 {
			names = []string{"a"}
		}
		r := relation.New(relation.SchemeOf(rel, names...))
		for i := 0; i < 1000; i++ {
			row := make([]relation.Value, len(names))
			for j := range row {
				row[j] = relation.Int(int64(i % 50))
			}
			r.AppendRaw(row)
		}
		t := cat.AddRelation(rel, r)
		for _, c := range names {
			if _, err := t.BuildHashIndex(c); err != nil {
				return err
			}
		}
	}
	o := optimizer.New(cat)
	o.Spill = spillDir != ""
	o.Strategy = strategy
	if planCache {
		o.Cache = plancache.New(plancache.DefaultCapacity)
	}
	var qt *obs.QueryTrace
	if tracer != nil {
		qt = tracer.Start(q.StringWithPreds())
	}
	t0 := time.Now()
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		qt.Finish(err)
		return err
	}
	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "plan (synthetic catalog, 1000 rows per relation):")
	fmt.Fprint(w, optimizer.Explain(p, tr))

	if planCache {
		// Re-plan the same query: the canonical fingerprint must find the
		// plan just cached, skipping the DP entirely.
		p2, tr2, err := o.PlanQueryTrace(q)
		if err != nil {
			return err
		}
		if tr2.CacheOutcome == "" {
			// Fixed-order and GOJ fallbacks keep the written association;
			// there is no graph-keyed plan to cache.
			fmt.Fprintf(w, "\nre-plan: not cached (strategy %s)\n", tr2.Strategy)
		} else {
			reused := "reused"
			if p2 != p {
				reused = "NOT reused"
			}
			fmt.Fprintf(w, "\nre-plan: plan cache %s (fp %s), plan object %s\n", tr2.CacheOutcome, tr2.Fingerprint, reused)
		}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var gov *exec.Governor
	if memLimit > 0 {
		gov = exec.NewGovernor(0, memLimit)
	}
	var ec *exec.ExecContext
	if timeout > 0 || memLimit > 0 || spillDir != "" {
		ec = exec.NewExecContext(ctx, gov)
	}
	if spillDir != "" {
		dir := spillDir
		if dir == "tmp" {
			dir = "" // spill.SpillConfig default: the OS temp dir
		}
		ec.EnableSpill(exec.SpillConfig{Dir: dir})
	}
	// The optimizer trace was already printed above; the nil tr keeps the
	// analyze text unchanged, so stamp the strategy into the record here.
	if qt != nil {
		qt.Rec.Strategy = tr.Strategy
		qt.Rec.FallbackReason = tr.FallbackReason
	}
	_, _, text, err := o.ExplainAnalyzeTraced(ec, p, nil, qt)
	qt.Finish(err)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "execution (explain analyze):")
	fmt.Fprint(w, text)
	return err
}
