package freejoin

// Cross-module integration tests: text → parse → analyze → plan → execute
// → verify against the reference algebra, with a catalog snapshot in the
// middle — the full path a downstream user takes.

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func TestEndToEndPipeline(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))

	// 1. Build a catalog with indexes.
	cat := storage.NewCatalog()
	for _, name := range []string{"A", "B", "C", "D"} {
		cat.AddRelation(name, workload.UniformRelation(rnd, name, 500, 50))
		tb, _ := cat.Table(name)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			t.Fatal(err)
		}
	}

	// 2. Snapshot to disk and restore — downstream state survives.
	path := filepath.Join(t.TempDir(), "cat.fjdb")
	if err := storage.SaveCatalogFile(path, cat); err != nil {
		t.Fatal(err)
	}
	restored, err := storage.LoadCatalogFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Parse a textual restricted join/outerjoin query.
	q, err := parse.Expr(
		"sigma[A.a = 7](((A -[A.a = B.a] B) -[B.b = C.b] C) ->[C.a = D.a] D)")
	if err != nil {
		t.Fatal(err)
	}

	// 4. Analyze: the block under sigma is freely reorderable.
	block := q.Left
	if ok, reason := core.FreelyReorderable(block); !ok {
		t.Fatalf("block should be reorderable: %s", reason)
	}

	// 5. Plan through the full §4 pipeline and execute.
	o := optimizer.New(restored)
	plan, reordered, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reordered {
		t.Fatalf("pipeline should reorder; plan:\n%s", plan.Explain())
	}
	got, counters, err := o.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	// 6. Reference evaluation agrees.
	want, err := q.Eval(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(want) {
		t.Fatalf("pipeline result differs from reference\nplan:\n%s", plan.Explain())
	}
	// The pushed index scan avoids reading A and B (C must still be read
	// once for its hash/NL join — there is no index on the b column); the
	// naive plan reads all four tables: 2000 tuples.
	if counters.TuplesRetrieved() > 1200 {
		t.Errorf("retrieved %d tuples; pushdown/index scan not effective:\n%s",
			counters.TuplesRetrieved(), plan.Explain())
	}

	// 7. Brute-force reorderability of the block on the same data.
	g, err := core.Analyze(block)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Verify(g.Graph, restored)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllEqual {
		t.Fatal("implementing trees disagree on real data")
	}
}

// TestExamplesCompile ensures every example main stays buildable (the
// full `go run` smoke lives in the Makefile-style workflow; compiling is
// hermetic and fast).
func TestExamplesCompile(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 6 {
		t.Fatalf("expected >= 6 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		src, err := os.ReadFile(filepath.Join("examples", e.Name(), "main.go"))
		if err != nil {
			t.Fatalf("example %s has no main.go: %v", e.Name(), err)
		}
		if !strings.Contains(string(src), "package main") || !strings.Contains(string(src), "func main()") {
			t.Errorf("example %s is not a runnable main", e.Name())
		}
	}
}
