// Package freejoin's root benchmark harness: one benchmark per
// table/figure-equivalent artifact of the paper (see EXPERIMENTS.md) plus
// ablations for the design decisions called out in DESIGN.md §6.
//
// Run with:
//
//	go test -bench=. -benchmem .
package freejoin

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"freejoin/internal/algebra"
	"freejoin/internal/core"
	"freejoin/internal/entity"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/lang"
	"freejoin/internal/optimizer"
	"freejoin/internal/plancache"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func keyPred(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

// example1Catalog builds R1 (1 row), R2 and R3 (n rows, indexed keys).
func example1Catalog(n int) *storage.Catalog {
	rnd := rand.New(rand.NewSource(1))
	cat := storage.NewCatalog()
	r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
	r1.AppendRaw([]relation.Value{relation.Int(int64(n / 2)), relation.Int(0)})
	cat.AddRelation("R1", r1)
	cat.AddRelation("R2", workload.UniformRelation(rnd, "R2", n, 1<<40))
	cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", n, 1<<40))
	for _, t := range []string{"R2", "R3"} {
		tb, _ := cat.Table(t)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			panic(err)
		}
	}
	return cat
}

const example1N = 50000

// BenchmarkExample1OuterjoinFirst (E1, paper's bad order): R1 - (R2 -> R3)
// evaluated as written — retrieves ~2N+1 tuples.
func BenchmarkExample1OuterjoinFirst(b *testing.B) {
	cat := example1Catalog(example1N)
	o := optimizer.New(cat)
	q := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), keyPred("R2", "R3")),
		keyPred("R1", "R2"))
	p, err := o.PlanFixed(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample1JoinFirst (E1, paper's good order): (R1 - R2) -> R3 —
// retrieves 3 tuples via indexes.
func BenchmarkExample1JoinFirst(b *testing.B) {
	cat := example1Catalog(example1N)
	o := optimizer.New(cat)
	q := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R1"), expr.NewLeaf("R2"), keyPred("R1", "R2")),
		expr.NewLeaf("R3"), keyPred("R2", "R3"))
	p, err := o.PlanFixed(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample1Optimized (E1): DP over the graph — must match the
// good order's speed, including planning time.
func BenchmarkExample1Optimized(b *testing.B) {
	cat := example1Catalog(example1N)
	o := optimizer.New(cat)
	q := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), keyPred("R2", "R3")),
		keyPred("R1", "R2"))
	if _, _, _, err := o.Run(q); err != nil { // warm the statistics cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := o.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample1Crossover (E2): both orders of the reorderable query
// with a non-selective theta join — at high selectivity the outerjoin-
// first order wins, at low selectivity join-first does.
func BenchmarkExample1Crossover(b *testing.B) {
	const n, r1Rows = 2000, 100
	for _, selPerMille := range []int{1, 100, 1000} {
		rnd := rand.New(rand.NewSource(2))
		cat := storage.NewCatalog()
		r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
		for i := 0; i < r1Rows; i++ {
			r1.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(int64(selPerMille))})
		}
		cat.AddRelation("R1", r1)
		r2 := relation.New(relation.SchemeOf("R2", "a", "b"))
		for i := 0; i < n; i++ {
			r2.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(rnd.Int63n(1000))})
		}
		cat.AddRelation("R2", r2)
		cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", n, 1<<40))
		for _, t := range []string{"R2", "R3"} {
			tb, _ := cat.Table(t)
			if _, err := tb.BuildHashIndex("a"); err != nil {
				b.Fatal(err)
			}
		}
		o := optimizer.New(cat)
		gt := predicate.Cmp(predicate.GtOp,
			predicate.Col(relation.A("R1", "b")), predicate.Col(relation.A("R2", "b")))
		joinFirst := expr.NewOuter(
			expr.NewJoin(expr.NewLeaf("R1"), expr.NewLeaf("R2"), gt),
			expr.NewLeaf("R3"), keyPred("R2", "R3"))
		outerFirst := expr.NewJoin(expr.NewLeaf("R1"),
			expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), keyPred("R2", "R3")), gt)
		for _, tc := range []struct {
			name string
			q    *expr.Node
		}{{"joinFirst", joinFirst}, {"outerFirst", outerFirst}} {
			p, err := o.PlanFixed(tc.q)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("sel=%.1f%%/%s", float64(selPerMille)/10, tc.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := o.Execute(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEnumerateITs (E16): materializing the implementing-tree space.
func BenchmarkEnumerateITs(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		g := workload.JoinChainGraph(n)
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expr.EnumerateITs(g, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, k := range []int{3, 5} {
		g := workload.StarGraph(k)
		b.Run(fmt.Sprintf("star-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expr.EnumerateITs(g, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountITs (E16): counting without materializing.
func BenchmarkCountITs(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		g := workload.JoinChainGraph(n)
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expr.CountITs(g, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBTClosure (E11): BFS over basic transforms on a nice graph.
func BenchmarkBTClosure(b *testing.B) {
	g := workload.CoreWithTreesGraph(3, 2)
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Closure(its[0], 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyTheorem (E10): exhaustive all-ITs evaluation.
func BenchmarkVerifyTheorem(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	g := workload.CoreWithTreesGraph(2, 2)
	db := workload.RandomDB(rnd, g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Verify(g, db)
		if err != nil || !res.AllEqual {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// BenchmarkNiceCheck (E9): the two niceness checkers.
func BenchmarkNiceCheck(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	graphs := make([]*graph.Graph, 0, 64)
	for i := 0; i < 64; i++ {
		graphs = append(graphs, workload.RandomConnectedGraph(rnd, 8))
	}
	b.Run("lemma1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphs[i%len(graphs)].IsNiceLemma1()
		}
	})
	b.Run("definitional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphs[i%len(graphs)].IsNiceDefinitional()
		}
	})
}

// BenchmarkOptimizerDP (E15): dynamic programming over connected subsets
// vs fixed-order planning.
func BenchmarkOptimizerDP(b *testing.B) {
	rnd := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 6, 8} {
		g := workload.CoreWithTreesGraph(n/2, n-n/2)
		cat := storage.NewCatalog()
		for _, node := range g.Nodes() {
			cat.AddRelation(node, workload.UniformRelation(rnd, node, 500, 100))
		}
		o := optimizer.New(cat)
		b.Run(fmt.Sprintf("dp-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := o.OptimizeGraph(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fixed-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := o.PlanFixed(its[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCacheHit: a warm plan-cache lookup (fingerprint the graph,
// find the resident plan) vs re-running the cold DP for the same query.
// The hit path must beat the cold path by at least 5x for the cache to
// carry its weight in a prepared-query pipeline.
func BenchmarkPlanCacheHit(b *testing.B) {
	rnd := rand.New(rand.NewSource(15))
	g := workload.CoreWithTreesGraph(4, 3)
	cat := storage.NewCatalog()
	for _, node := range g.Nodes() {
		cat.AddRelation(node, workload.UniformRelation(rnd, node, 500, 100))
	}
	b.Run("cold", func(b *testing.B) {
		o := optimizer.New(cat)
		for i := 0; i < b.N; i++ {
			if _, err := o.OptimizeGraph(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		o := optimizer.New(cat)
		o.Cache = plancache.New(16)
		if _, err := o.OptimizeGraph(g); err != nil { // populate
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.OptimizeGraph(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFingerprint: cost of canonicalizing and hashing a query graph
// — the fixed overhead every cache lookup pays.
func BenchmarkFingerprint(b *testing.B) {
	g := workload.CoreWithTreesGraph(4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp := plancache.Of(g); fp.Hash == 0 {
			b.Fatal("degenerate fingerprint")
		}
	}
}

// BenchmarkLeftDeepVsBushy: DP planning time and plan cost under the
// classic left-deep restriction vs full bushy search.
func BenchmarkLeftDeepVsBushy(b *testing.B) {
	rnd := rand.New(rand.NewSource(14))
	g := workload.CoreWithTreesGraph(5, 3)
	cat := storage.NewCatalog()
	for i, node := range g.Nodes() {
		cat.AddRelation(node, workload.UniformRelation(rnd, node, 2000/(i+1), 200))
	}
	for _, leftDeep := range []bool{false, true} {
		name := "bushy"
		if leftDeep {
			name = "leftdeep"
		}
		b.Run(name, func(b *testing.B) {
			o := optimizer.New(cat)
			o.LeftDeepOnly = leftDeep
			var cost float64
			for i := 0; i < b.N; i++ {
				p, err := o.OptimizeGraph(g)
				if err != nil {
					b.Fatal(err)
				}
				cost = p.Cost
			}
			b.ReportMetric(cost, "plancost")
		})
	}
}

// BenchmarkJoinAlgorithms (DESIGN.md ablation 2): the physical join
// algorithms on the same equijoin.
func BenchmarkJoinAlgorithms(b *testing.B) {
	const n = 20000
	rnd := rand.New(rand.NewSource(6))
	lrel := workload.UniformRelation(rnd, "L", n, int64(n))
	rrel := workload.UniformRelation(rnd, "R", n, int64(n))
	lt := storage.NewTable("L", lrel)
	rt := storage.NewTable("R", rrel)
	if _, err := rt.BuildHashIndex("a"); err != nil {
		b.Fatal(err)
	}
	la, ra := relation.A("L", "a"), relation.A("R", "a")

	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hj, err := exec.NewHashJoin(exec.NewScan(lt, nil), exec.NewScan(rt, nil),
				[]relation.Attr{la}, []relation.Attr{ra}, nil, exec.InnerMode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(hj, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ij, err := exec.NewIndexJoin(exec.NewScan(lt, nil), rt, "a", la, nil, exec.InnerMode, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(ij, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ls, err := exec.NewSort(exec.NewScan(lt, nil), []relation.Attr{la})
			if err != nil {
				b.Fatal(err)
			}
			rs, err := exec.NewSort(exec.NewScan(rt, nil), []relation.Attr{ra})
			if err != nil {
				b.Fatal(err)
			}
			mj, err := exec.NewMergeJoin(ls, rs, la, ra, exec.InnerMode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(mj, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nestedloop-1k", func(b *testing.B) {
		small := workload.UniformRelation(rand.New(rand.NewSource(7)), "L", 1000, 1000)
		st := storage.NewTable("L", small)
		smallR := workload.UniformRelation(rand.New(rand.NewSource(8)), "R", 1000, 1000)
		srt := storage.NewTable("R", smallR)
		p := predicate.Eq(la, ra)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nl, err := exec.NewNestedLoopJoin(exec.NewScan(st, nil), exec.NewScan(srt, nil), p, exec.InnerMode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(nl, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelJoin: the partitioned parallel hash join vs the serial
// one on the same inner equijoin (concurrency ablation).
func BenchmarkParallelJoin(b *testing.B) {
	const n = 100000
	rnd := rand.New(rand.NewSource(13))
	lt := storage.NewTable("L", workload.UniformRelation(rnd, "L", n, int64(n)))
	rt := storage.NewTable("R", workload.UniformRelation(rnd, "R", n, int64(n)))
	la, ra := relation.A("L", "a"), relation.A("R", "a")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hj, err := exec.NewHashJoin(exec.NewScan(lt, nil), exec.NewScan(rt, nil),
				[]relation.Attr{la}, []relation.Attr{ra}, nil, exec.InnerMode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(hj, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pj, err := exec.NewParallelHashJoin(exec.NewScan(lt, nil), exec.NewScan(rt, nil),
					la, ra, exec.InnerMode, workers)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Collect(pj, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTupleRepresentation (DESIGN.md ablation 1): positional rows
// (the library's representation) vs map-based tuples for a restrict-and-
// project loop.
func BenchmarkTupleRepresentation(b *testing.B) {
	const n = 50000
	rnd := rand.New(rand.NewSource(9))
	rel := workload.UniformRelation(rnd, "R", n, 100)
	attr := relation.A("R", "b")
	b.Run("positional", func(b *testing.B) {
		pos := rel.Scheme().IndexOf(attr)
		for i := 0; i < b.N; i++ {
			count := 0
			for r := 0; r < rel.Len(); r++ {
				if v := rel.RawRow(r)[pos]; !v.IsNull() && v.AsInt() < 50 {
					count++
				}
			}
			if count == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		// Simulate the rejected design: a map per tuple.
		maps := make([]map[relation.Attr]relation.Value, rel.Len())
		for r := 0; r < rel.Len(); r++ {
			m := make(map[relation.Attr]relation.Value, rel.Scheme().Len())
			for c := 0; c < rel.Scheme().Len(); c++ {
				m[rel.Scheme().At(c)] = rel.RawRow(r)[c]
			}
			maps[r] = m
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			for _, m := range maps {
				if v := m[attr]; !v.IsNull() && v.AsInt() < 50 {
					count++
				}
			}
			if count == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkSimplify (E12): the §4 rewrite on a deep outerjoin chain.
func BenchmarkSimplify(b *testing.B) {
	inner := expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"), keyPred("S", "T"))
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), inner, keyPred("R", "S")),
		predicate.EqConst(relation.A("T", "a"), relation.Int(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, n := core.Simplify(q, core.SimplifyOptions{}); n != 2 {
			b.Fatalf("conversions = %d", n)
		}
	}
}

// BenchmarkIdentity12 (E6): one associativity check on mid-sized inputs,
// via the reference algebra.
func BenchmarkIdentity12(b *testing.B) {
	rnd := rand.New(rand.NewSource(10))
	x := workload.UniformRelation(rnd, "X", 2000, 500)
	y := workload.UniformRelation(rnd, "Y", 2000, 500)
	z := workload.UniformRelation(rnd, "Z", 2000, 500)
	pxy, pyz := keyPred("X", "Y"), keyPred("Y", "Z")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la, err := algebra.LeftOuterJoin(x, y, pxy)
		if err != nil {
			b.Fatal(err)
		}
		l, err := algebra.LeftOuterJoin(la, z, pyz)
		if err != nil {
			b.Fatal(err)
		}
		ra, err := algebra.LeftOuterJoin(y, z, pyz)
		if err != nil {
			b.Fatal(err)
		}
		r, err := algebra.LeftOuterJoin(x, ra, pxy)
		if err != nil {
			b.Fatal(err)
		}
		if !l.EqualBag(r) {
			b.Fatal("identity 12 violated")
		}
	}
}

// BenchmarkGOJ (E14): the generalized outerjoin operator.
func BenchmarkGOJ(b *testing.B) {
	rnd := rand.New(rand.NewSource(11))
	x := workload.UniformRelation(rnd, "X", 5000, 1000)
	y := workload.UniformRelation(rnd, "Y", 5000, 1000)
	p := keyPred("X", "Y")
	s := x.Scheme().Attrs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algebra.GeneralizedOuterJoin(x, y, p, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGOJPlan (E19): Example 2's non-reorderable query, fixed order
// vs the §6.2 GOJ-reassociated plan.
func BenchmarkGOJPlan(b *testing.B) {
	const n = 20000
	rnd := rand.New(rand.NewSource(12))
	cat := storage.NewCatalog()
	x := relation.New(relation.SchemeOf("X", "a", "b"))
	x.AppendRaw([]relation.Value{relation.Int(n / 2), relation.Int(0)})
	cat.AddRelation("X", x)
	cat.AddRelation("Y", workload.UniformRelation(rnd, "Y", n, 1<<40))
	cat.AddRelation("Z", workload.UniformRelation(rnd, "Z", n, 1<<40))
	for _, tn := range []string{"Y", "Z"} {
		tb, _ := cat.Table(tn)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			b.Fatal(err)
		}
	}
	o := optimizer.New(cat)
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), keyPred("Y", "Z")),
		keyPred("X", "Y"))
	fixed, err := o.PlanFixed(q)
	if err != nil {
		b.Fatal(err)
	}
	gp, strategy, err := o.OptimizeWithGOJ(q)
	if err != nil || strategy != "goj" {
		b.Fatalf("strategy %q err %v", strategy, err)
	}
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := o.Execute(fixed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goj", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := o.Execute(gp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLangTranslate (E13): parse + translate + reorderability check
// of the §5 prosecutor query.
func BenchmarkLangTranslate(b *testing.B) {
	store := entity.NewStore()
	mustDef := func(d entity.TypeDef) {
		if err := store.Define(d); err != nil {
			b.Fatal(err)
		}
	}
	mustDef(entity.TypeDef{Name: "EMPLOYEE", Scalars: []string{"Name", "D#", "Rank"}, Sets: []string{"ChildName"}})
	mustDef(entity.TypeDef{Name: "REPORT", Scalars: []string{"Title"}})
	mustDef(entity.TypeDef{Name: "DEPARTMENT", Scalars: []string{"D#", "Location"},
		Refs: map[string]string{"Manager": "EMPLOYEE", "Audit": "REPORT"}})
	for i := 0; i < 200; i++ {
		oid, err := store.New("EMPLOYEE", map[string]relation.Value{
			"Name": relation.Str(fmt.Sprintf("e%d", i)),
			"D#":   relation.Int(int64(i % 20)), "Rank": relation.Int(int64(i % 15))})
		if err != nil {
			b.Fatal(err)
		}
		if i%3 == 0 {
			if err := store.AddToSet(oid, "ChildName", relation.Str("kid")); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := store.New("DEPARTMENT", map[string]relation.Value{
			"D#": relation.Int(int64(i)), "Location": relation.Str("Zurich")}); err != nil {
			b.Fatal(err)
		}
	}
	src := `Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit
		Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := lang.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := lang.Translate(store, q)
		if err != nil {
			b.Fatal(err)
		}
		if !tr.Analysis.Free {
			b.Fatal("block must be free")
		}
	}
}

// BenchmarkExternalSort measures the external merge sort against the
// in-memory path on the same input: a byte budget forces every run to
// disk and back through the k-way merge.
func BenchmarkExternalSort(b *testing.B) {
	const n = 20000
	rnd := rand.New(rand.NewSource(31))
	rt := storage.NewTable("R", workload.UniformRelation(rnd, "R", n, int64(n)))
	by := []relation.Attr{relation.A("R", "a")}
	for _, bc := range []struct {
		name  string
		bytes int64
	}{
		{"in-memory", 0},
		{"spill-64KB", 64 << 10},
		{"spill-8KB", 8 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				s, err := exec.NewSort(exec.NewScan(rt, nil), by)
				if err != nil {
					b.Fatal(err)
				}
				var ec *exec.ExecContext
				if bc.bytes > 0 {
					ec = exec.NewExecContext(context.Background(), exec.NewGovernor(0, bc.bytes))
					ec.EnableSpill(exec.SpillConfig{Dir: dir})
				}
				out, err := exec.CollectCtx(ec, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != n {
					b.Fatalf("lost rows: %d", out.Len())
				}
			}
		})
	}
}

// BenchmarkGraceHashJoin measures the grace hash join against the
// in-memory build on the same inputs.
func BenchmarkGraceHashJoin(b *testing.B) {
	const n = 10000
	rnd := rand.New(rand.NewSource(33))
	lt := storage.NewTable("L", workload.UniformRelation(rnd, "L", n, int64(n/4)))
	rt := storage.NewTable("R", workload.UniformRelation(rnd, "R", n, int64(n/4)))
	lk := []relation.Attr{relation.A("L", "a")}
	rk := []relation.Attr{relation.A("R", "a")}
	for _, bc := range []struct {
		name  string
		bytes int64
	}{
		{"in-memory", 0},
		{"grace-64KB", 64 << 10},
		{"grace-8KB", 8 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				h, err := exec.NewHashJoin(exec.NewScan(lt, nil), exec.NewScan(rt, nil), lk, rk, nil, exec.InnerMode)
				if err != nil {
					b.Fatal(err)
				}
				var ec *exec.ExecContext
				if bc.bytes > 0 {
					ec = exec.NewExecContext(context.Background(), exec.NewGovernor(0, bc.bytes))
					ec.EnableSpill(exec.SpillConfig{Dir: dir})
				}
				if _, err := exec.CollectCtx(ec, h, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkYannakakisDangling pits the Yannakakis full reducer against
// the classic DP plan on the fast path's home turf: a join chain
// A - B - C where 90% of every relation is dead weight that no complete
// result can use, but which no single join can see. A and B share a hot
// key absent from C; B and C share another hot key absent from A — so
// EVERY join order's first join explodes to ~10^6 rows before the third
// relation kills them all. The full reducer deletes both hot groups
// with O(input) semijoin passes and joins only the 10% that survives.
func BenchmarkYannakakisDangling(b *testing.B) {
	const (
		hot      = 1000 // rows per hot group
		backbone = 400  // joinable rows per relation (1:1 across the chain)
		hotAB    = int64(5_000_001)
		hotBC    = int64(5_000_002)
	)
	rnd := rand.New(rand.NewSource(31))
	g := workload.JoinChainGraph(3)
	cat := storage.NewCatalog()
	for i, node := range g.Nodes() {
		r := relation.New(relation.SchemeOf(node, "a", "b"))
		add := func(key int64, count int) {
			for j := 0; j < count; j++ {
				r.AppendRaw([]relation.Value{relation.Int(key), relation.Int(rnd.Int63n(1 << 20))})
			}
		}
		switch node {
		case "A":
			add(hotAB, hot)
		case "B":
			add(hotAB, hot)
			add(hotBC, hot)
		case "C":
			add(hotBC, hot)
		}
		for j := 0; j < backbone; j++ {
			add(int64(j*10), 1) // shared across all three relations
		}
		// Pad to 4000 rows with per-relation unique keys; with the hot
		// groups (dead past their one edge) that is ~90% dangling.
		offset := int64(100_000 * (i + 1))
		for r.Len() < 4000 {
			add(offset+int64(r.Len()), 1)
		}
		cat.AddRelation(node, r)
	}
	for _, strat := range []string{"dp", "yannakakis"} {
		o := optimizer.New(cat)
		o.Strategy = strat
		p, err := o.OptimizeGraph(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := o.Execute(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
